package aero

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"osprey/internal/obs"
)

// Server exposes a metadata Store over HTTP. Only metadata crosses this
// API — never data bytes — preserving AERO's central design property.
//
// Routes:
//
//	POST /data                 {name, source_url}        -> DataRecord
//	GET  /data                                           -> []DataRecord
//	GET  /data/{uuid}                                    -> DataRecord
//	POST /data/{uuid}/versions Version                   -> DataRecord
//	GET  /data/{uuid}/provenance                         -> []ProvenanceEdge
//	POST /flows                FlowRecord                -> FlowRecord
//	GET  /flows                                          -> []FlowRecord
//	GET  /flows/{id}                                     -> FlowRecord
//	POST /flows/{id}/runs      {at}                      -> 204
//	POST /provenance           ProvenanceEdge            -> 204
//	GET  /healthz                                        -> 200 "ok"
//	GET  /metrics                                        -> obs.Snapshot JSON
//	GET  /trace                                          -> obs.TraceSnapshot JSON
//	POST /admin/compact                                  -> 204 (501 without WAL)
type Server struct {
	store   *Store
	mux     *http.ServeMux
	compact func() error // set by SetCompact; nil = persistence disabled
}

// NewServer wraps a store in the HTTP API.
func NewServer(store *Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/data", s.handleData)
	s.mux.HandleFunc("/data/", s.handleDataItem)
	s.mux.HandleFunc("/flows", s.handleFlows)
	s.mux.HandleFunc("/flows/", s.handleFlowItem)
	s.mux.HandleFunc("/provenance", s.handleProvenance)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	s.mux.Handle("/metrics", obs.Default().Handler())
	s.mux.Handle("/trace", obs.DefaultTracer().Handler())
	s.mux.HandleFunc("/admin/compact", s.handleCompact)
	return s
}

// SetCompact installs the snapshot+truncate hook behind POST
// /admin/compact (typically Store.Compact, or a closure compacting every
// WAL the process owns). Without it the route answers 501.
func (s *Server) SetCompact(fn func() error) { s.compact = fn }

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.compact == nil {
		http.Error(w, "aero: persistence not enabled (no -data-dir)", http.StatusNotImplemented)
		return
	}
	if err := s.compact(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ServeHTTP implements http.Handler, counting and timing every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	mHTTPRequest.ObserveSince(start)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrNotFound) {
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		recs, err := s.store.ListData()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, recs)
	case http.MethodPost:
		var req struct {
			Name      string `json:"name"`
			SourceURL string `json:"source_url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, err := s.store.CreateData(req.Name, req.SourceURL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, rec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleDataItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/data/")
	parts := strings.Split(rest, "/")
	uuid := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		rec, err := s.store.GetData(uuid)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case len(parts) == 2 && parts[1] == "versions" && r.Method == http.MethodPost:
		var v Version
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, err := s.store.AppendVersion(uuid, v)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, rec)
	case len(parts) == 2 && parts[1] == "provenance" && r.Method == http.MethodGet:
		edges, err := s.store.Provenance(uuid)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, edges)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		flows, err := s.store.ListFlows()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, flows)
	case http.MethodPost:
		var rec FlowRecord
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := s.store.CreateFlow(rec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleFlowItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/flows/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		rec, err := s.store.GetFlow(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case len(parts) == 2 && parts[1] == "runs" && r.Method == http.MethodPost:
		var req struct {
			At time.Time `json:"at"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.store.RecordRun(id, req.At); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var edge ProvenanceEdge
	if err := json.NewDecoder(r.Body).Decode(&edge); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.AddProvenance(edge); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Client is the HTTP implementation of Metadata, so a Platform can run
// against a remote AERO server exactly as it does against a local Store.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient points a metadata client at an AERO server.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: http.DefaultClient}
}

var _ Metadata = (*Client)(nil)

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%w: %s", ErrNotFound, strings.TrimSpace(string(msg)))
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("aero: server %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// CreateData implements Metadata.
func (c *Client) CreateData(name, sourceURL string) (*DataRecord, error) {
	var rec DataRecord
	err := c.do(http.MethodPost, "/data", map[string]string{"name": name, "source_url": sourceURL}, &rec)
	if err != nil {
		return nil, err
	}
	return &rec, nil
}

// GetData implements Metadata.
func (c *Client) GetData(uuid string) (*DataRecord, error) {
	var rec DataRecord
	if err := c.do(http.MethodGet, "/data/"+uuid, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// AppendVersion implements Metadata.
func (c *Client) AppendVersion(uuid string, v Version) (*DataRecord, error) {
	var rec DataRecord
	if err := c.do(http.MethodPost, "/data/"+uuid+"/versions", v, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// ListData implements Metadata.
func (c *Client) ListData() ([]*DataRecord, error) {
	var recs []*DataRecord
	if err := c.do(http.MethodGet, "/data", nil, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// CreateFlow implements Metadata.
func (c *Client) CreateFlow(rec FlowRecord) (*FlowRecord, error) {
	var out FlowRecord
	if err := c.do(http.MethodPost, "/flows", rec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetFlow implements Metadata.
func (c *Client) GetFlow(id string) (*FlowRecord, error) {
	var out FlowRecord
	if err := c.do(http.MethodGet, "/flows/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListFlows implements Metadata.
func (c *Client) ListFlows() ([]*FlowRecord, error) {
	var out []*FlowRecord
	if err := c.do(http.MethodGet, "/flows", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RecordRun implements Metadata.
func (c *Client) RecordRun(flowID string, at time.Time) error {
	return c.do(http.MethodPost, "/flows/"+flowID+"/runs", map[string]time.Time{"at": at}, nil)
}

// AddProvenance implements Metadata.
func (c *Client) AddProvenance(edge ProvenanceEdge) error {
	return c.do(http.MethodPost, "/provenance", edge, nil)
}

// Provenance implements Metadata.
func (c *Client) Provenance(uuid string) ([]ProvenanceEdge, error) {
	var out []ProvenanceEdge
	if err := c.do(http.MethodGet, "/data/"+uuid+"/provenance", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
