package aero

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"osprey/internal/globus"
	"osprey/internal/obs"
)

// Server exposes a metadata Store over HTTP. Only metadata crosses this
// API — never data bytes — preserving AERO's central design property.
//
// Routes:
//
//	POST /data                 {name, source_url}        -> DataRecord
//	GET  /data                                           -> []DataRecord
//	GET  /data/{uuid}                                    -> DataRecord
//	POST /data/{uuid}/versions Version                   -> DataRecord
//	GET  /data/{uuid}/provenance                         -> []ProvenanceEdge
//	POST /flows                FlowRecord                -> FlowRecord
//	GET  /flows                                          -> []FlowRecord
//	GET  /flows/{id}                                     -> FlowRecord
//	POST /flows/{id}/runs      {at}                      -> 204
//	POST /provenance           ProvenanceEdge            -> 204
//	GET  /watch?uuid=&timeout=&buffer=&sub=              -> SSE stream or long-poll JSON
//	GET  /healthz                                        -> 200 "ok"
//	GET  /metrics                                        -> obs.Snapshot JSON
//	GET  /trace                                          -> obs.TraceSnapshot JSON
//	POST /admin/compact                                  -> 204 (501 without WAL)
//
// With SetAuth installed, every route except /healthz, /metrics, and
// /trace requires a bearer token carrying globus.ScopeAero; the token's
// identity is the tenant whose namespace the request operates in. With
// SetQuotas installed, mutating requests are admission-metered per tenant
// (429 + Retry-After on a dry bucket). Without either, the server is the
// legacy single-tenant API, byte-identical to what it always was.
type Server struct {
	store   *Store
	mux     *http.ServeMux
	compact func() error // set by SetCompact; nil = persistence disabled
	auth    *globus.Auth // set by SetAuth; nil = single-tenant, no auth
	quotas  *Quotas      // set by SetQuotas; nil = unmetered

	// Long-poll watch sessions (sub= parameter), keyed tenant+"\x00"+id so
	// session IDs cannot collide across tenants.
	sessMu   sync.Mutex
	sessions map[string]*watchSession
}

// NewServer wraps a store in the HTTP API.
func NewServer(store *Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), sessions: map[string]*watchSession{}}
	s.mux.HandleFunc("/data", s.handleData)
	s.mux.HandleFunc("/data/", s.handleDataItem)
	s.mux.HandleFunc("/flows", s.handleFlows)
	s.mux.HandleFunc("/flows/", s.handleFlowItem)
	s.mux.HandleFunc("/provenance", s.handleProvenance)
	s.mux.HandleFunc("/watch", s.handleWatch)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	s.mux.Handle("/metrics", obs.Default().Handler())
	s.mux.Handle("/trace", obs.DefaultTracer().Handler())
	s.mux.HandleFunc("/admin/compact", s.handleCompact)
	return s
}

// SetAuth turns on bearer-token authentication: requests must present a
// token Validate accepts for globus.ScopeAero, and the token's identity
// becomes the request's tenant namespace.
func (s *Server) SetAuth(a *globus.Auth) { s.auth = a }

// SetQuotas installs per-tenant admission metering on mutating routes.
func (s *Server) SetQuotas(q *Quotas) { s.quotas = q }

// SetCompact installs the snapshot+truncate hook behind POST
// /admin/compact (typically Store.Compact, or a closure compacting every
// WAL the process owns). Without it the route answers 501.
func (s *Server) SetCompact(fn func() error) { s.compact = fn }

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.compact == nil {
		http.Error(w, "aero: persistence not enabled (no -data-dir)", http.StatusNotImplemented)
		return
	}
	if err := s.compact(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ServeHTTP implements http.Handler: count and time every request, then
// run the auth and quota middleware before routing. Auth and quotas live
// HERE, once, in front of the mux — handlers never re-check them.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	start := time.Now()
	defer mHTTPRequest.ObserveSince(start)

	if !openRoute(r.URL.Path) {
		if s.auth != nil {
			tenant, ok := s.authenticate(w, r)
			if !ok {
				return
			}
			r = r.WithContext(context.WithValue(r.Context(), tenantKey, tenant))
		}
		if s.quotas != nil {
			if class := quotaClass(r); class != "" {
				ok, retry := s.quotas.Allow(tenantFrom(r), class)
				if !ok {
					w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
					http.Error(w, "quota exceeded for class "+class, http.StatusTooManyRequests)
					return
				}
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

// openRoute lists the paths that skip auth and quotas: liveness and
// observability, which operators scrape without tenant credentials.
func openRoute(path string) bool {
	return path == "/healthz" || path == "/metrics" || path == "/trace"
}

// authenticate resolves the request's tenant from its bearer token,
// writing the 401/403 itself when the credential fails.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (string, bool) {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		mAuthRejected.Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="aero"`)
		http.Error(w, "missing bearer token", http.StatusUnauthorized)
		return "", false
	}
	tok, err := s.auth.Validate(strings.TrimPrefix(h, prefix), globus.ScopeAero)
	if err != nil {
		mAuthRejected.Inc()
		code := http.StatusUnauthorized
		if errors.Is(err, globus.ErrForbidden) {
			code = http.StatusForbidden
		}
		http.Error(w, err.Error(), code)
		return "", false
	}
	return tok.Identity, true
}

// quotaClass maps a request to its admission class ("" = unmetered).
// Reads are free; the metered classes are the mutation paths.
func quotaClass(r *http.Request) string {
	if r.Method != http.MethodPost {
		return ""
	}
	p := r.URL.Path
	switch {
	case p == "/data",
		strings.HasPrefix(p, "/data/") && strings.HasSuffix(p, "/versions"):
		return QuotaIngest
	case p == "/flows",
		strings.HasPrefix(p, "/flows/") && strings.HasSuffix(p, "/runs"),
		p == "/provenance":
		return QuotaAnalysis
	}
	return ""
}

// tenantKey carries the authenticated tenant through the request context.
type ctxKey int

const tenantKey ctxKey = iota

func tenantFrom(r *http.Request) string {
	t, _ := r.Context().Value(tenantKey).(string)
	return t
}

// viewOf returns the metadata view the request operates in: the
// authenticated tenant's namespace, or the legacy "" namespace when auth
// is off (tenantFrom returns "" then, and Tenant("") IS the legacy API).
func (s *Server) viewOf(r *http.Request) *TenantView {
	return s.store.Tenant(tenantFrom(r))
}

// maxBodyBytes caps every JSON request body; metadata records are small,
// so anything near this is hostile or broken.
const maxBodyBytes = 1 << 20

// decodeJSON reads one JSON value from a capped request body, rejecting
// trailing data. Every POST handler decodes through here.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("aero: trailing data after JSON body")
	}
	return nil
}

// writeBodyErr maps decodeJSON failures: an over-cap body is 413,
// anything else malformed is 400.
func writeBodyErr(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrNotFound) {
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		recs, err := s.viewOf(r).ListData()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, recs)
	case http.MethodPost:
		var req struct {
			Name      string `json:"name"`
			SourceURL string `json:"source_url"`
		}
		if err := decodeJSON(w, r, &req); err != nil {
			writeBodyErr(w, err)
			return
		}
		rec, err := s.viewOf(r).CreateData(req.Name, req.SourceURL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, rec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleDataItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/data/")
	parts := strings.Split(rest, "/")
	uuid := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		rec, err := s.viewOf(r).GetData(uuid)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case len(parts) == 2 && parts[1] == "versions" && r.Method == http.MethodPost:
		var v Version
		if err := decodeJSON(w, r, &v); err != nil {
			writeBodyErr(w, err)
			return
		}
		rec, err := s.viewOf(r).AppendVersion(uuid, v)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, rec)
	case len(parts) == 2 && parts[1] == "provenance" && r.Method == http.MethodGet:
		edges, err := s.viewOf(r).Provenance(uuid)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, edges)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		flows, err := s.viewOf(r).ListFlows()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, flows)
	case http.MethodPost:
		var rec FlowRecord
		if err := decodeJSON(w, r, &rec); err != nil {
			writeBodyErr(w, err)
			return
		}
		out, err := s.viewOf(r).CreateFlow(rec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleFlowItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/flows/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		rec, err := s.viewOf(r).GetFlow(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case len(parts) == 2 && parts[1] == "runs" && r.Method == http.MethodPost:
		var req struct {
			At time.Time `json:"at"`
		}
		if err := decodeJSON(w, r, &req); err != nil {
			writeBodyErr(w, err)
			return
		}
		if err := s.viewOf(r).RecordRun(id, req.At); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var edge ProvenanceEdge
	if err := decodeJSON(w, r, &edge); err != nil {
		writeBodyErr(w, err)
		return
	}
	if err := s.viewOf(r).AddProvenance(edge); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Client is the HTTP implementation of Metadata, so a Platform can run
// against a remote AERO server exactly as it does against a local Store.
// Token, when set, is presented as a bearer credential on every request —
// required against a server running with SetAuth, where it selects the
// tenant namespace the client operates in.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	Token   string
}

// NewClient points a metadata client at an AERO server.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: http.DefaultClient}
}

var _ Metadata = (*Client)(nil)

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%w: %s", ErrNotFound, strings.TrimSpace(string(msg)))
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("aero: server %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// CreateData implements Metadata.
func (c *Client) CreateData(name, sourceURL string) (*DataRecord, error) {
	var rec DataRecord
	err := c.do(http.MethodPost, "/data", map[string]string{"name": name, "source_url": sourceURL}, &rec)
	if err != nil {
		return nil, err
	}
	return &rec, nil
}

// GetData implements Metadata.
func (c *Client) GetData(uuid string) (*DataRecord, error) {
	var rec DataRecord
	if err := c.do(http.MethodGet, "/data/"+uuid, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// AppendVersion implements Metadata.
func (c *Client) AppendVersion(uuid string, v Version) (*DataRecord, error) {
	var rec DataRecord
	if err := c.do(http.MethodPost, "/data/"+uuid+"/versions", v, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// ListData implements Metadata.
func (c *Client) ListData() ([]*DataRecord, error) {
	var recs []*DataRecord
	if err := c.do(http.MethodGet, "/data", nil, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// CreateFlow implements Metadata.
func (c *Client) CreateFlow(rec FlowRecord) (*FlowRecord, error) {
	var out FlowRecord
	if err := c.do(http.MethodPost, "/flows", rec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetFlow implements Metadata.
func (c *Client) GetFlow(id string) (*FlowRecord, error) {
	var out FlowRecord
	if err := c.do(http.MethodGet, "/flows/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListFlows implements Metadata.
func (c *Client) ListFlows() ([]*FlowRecord, error) {
	var out []*FlowRecord
	if err := c.do(http.MethodGet, "/flows", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RecordRun implements Metadata.
func (c *Client) RecordRun(flowID string, at time.Time) error {
	return c.do(http.MethodPost, "/flows/"+flowID+"/runs", map[string]time.Time{"at": at}, nil)
}

// AddProvenance implements Metadata.
func (c *Client) AddProvenance(edge ProvenanceEdge) error {
	return c.do(http.MethodPost, "/provenance", edge, nil)
}

// Provenance implements Metadata.
func (c *Client) Provenance(uuid string) ([]ProvenanceEdge, error) {
	var out []ProvenanceEdge
	if err := c.do(http.MethodGet, "/data/"+uuid+"/provenance", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
