package aero

import (
	"testing"
	"time"
)

// fakeClock drives Quotas deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestQuotaTokenBucketDeterministic(t *testing.T) {
	clk := newFakeClock()
	q := NewQuotas()
	q.SetNow(clk.now)
	q.SetLimit(QuotaIngest, QuotaLimit{Rate: 1, Burst: 2})

	// Burst of 2, then dry.
	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("alice", QuotaIngest); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := q.Allow("alice", QuotaIngest)
	if ok {
		t.Fatal("third request admitted from a dry bucket")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("Retry-After = %v, want (0, 1s]", retry)
	}

	// The advertised wait is exact under the fake clock: honoring it
	// admits the retry, a hair less does not.
	clk.advance(retry - time.Millisecond)
	if ok, _ := q.Allow("alice", QuotaIngest); ok {
		t.Fatal("admitted before the advertised retry time")
	}
	clk.advance(2 * time.Millisecond)
	if ok, _ := q.Allow("alice", QuotaIngest); !ok {
		t.Fatal("denied after the advertised retry time")
	}
}

func TestQuotaTenantsIndependent(t *testing.T) {
	clk := newFakeClock()
	q := NewQuotas()
	q.SetNow(clk.now)
	q.SetLimit(QuotaIngest, QuotaLimit{Rate: 1, Burst: 1})

	if ok, _ := q.Allow("noisy", QuotaIngest); !ok {
		t.Fatal("first noisy request denied")
	}
	if ok, _ := q.Allow("noisy", QuotaIngest); ok {
		t.Fatal("noisy tenant not throttled")
	}
	// The neighbor's bucket is untouched by the noisy tenant's burn.
	if ok, _ := q.Allow("quiet", QuotaIngest); !ok {
		t.Fatal("quiet tenant starved by noisy neighbor")
	}
}

func TestQuotaOverridesAndUnlimited(t *testing.T) {
	clk := newFakeClock()
	q := NewQuotas()
	q.SetNow(clk.now)

	// No limit configured: everything admitted.
	for i := 0; i < 100; i++ {
		if ok, _ := q.Allow("anyone", QuotaIngest); !ok {
			t.Fatal("unlimited class denied")
		}
	}

	q.SetLimit(QuotaIngest, QuotaLimit{Rate: 1, Burst: 1})
	q.SetTenantLimit("vip", QuotaIngest, QuotaLimit{Rate: 1, Burst: 10})
	for i := 0; i < 10; i++ {
		if ok, _ := q.Allow("vip", QuotaIngest); !ok {
			t.Fatalf("vip override request %d denied", i)
		}
	}
	if ok, _ := q.Allow("vip", QuotaIngest); ok {
		t.Fatal("vip override burst not enforced")
	}
	// Rate <= 0 override means unlimited for that tenant.
	q.SetTenantLimit("root", QuotaIngest, QuotaLimit{})
	for i := 0; i < 50; i++ {
		if ok, _ := q.Allow("root", QuotaIngest); !ok {
			t.Fatal("unlimited override denied")
		}
	}
	// Classes meter separately: ingest burn leaves analysis untouched.
	if ok, _ := q.Allow("vip", QuotaAnalysis); !ok {
		t.Fatal("analysis class coupled to ingest bucket")
	}
}

func TestQuotaRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	q := NewQuotas()
	q.SetNow(clk.now)
	q.SetLimit(QuotaIngest, QuotaLimit{Rate: 10, Burst: 3})
	if ok, _ := q.Allow("t", QuotaIngest); !ok {
		t.Fatal("first denied")
	}
	// A long idle period must not bank more than Burst tokens.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.Allow("t", QuotaIngest); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after idle, want burst cap 3", admitted)
	}
}
