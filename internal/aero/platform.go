package aero

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"osprey/internal/globus"
	"osprey/internal/obs"
)

// TriggerPolicy selects when a multi-input analysis flow fires.
type TriggerPolicy int

const (
	// TriggerAny fires whenever any registered input updates.
	TriggerAny TriggerPolicy = iota
	// TriggerAll fires only once every registered input has updated since
	// the flow's last run — the policy the paper's aggregate R(t) step
	// uses ("when all of those four individual R(t) analyses have
	// produced new data").
	TriggerAll
)

func (p TriggerPolicy) String() string {
	if p == TriggerAll {
		return "all"
	}
	return "any"
}

// Event is one entry of the platform's observable activity log.
type Event struct {
	Time   time.Time
	Kind   string // "ingest.nochange" | "ingest.update" | "analysis.run" | "analysis.error" | ...
	Flow   string
	Detail string
}

// Platform wires the metadata service to the user's own storage and compute
// (the "bring your own storage and compute" design of §2.2).
type Platform struct {
	Meta     Metadata
	Transfer *globus.TransferService
	Timers   *globus.TimerService

	identity string
	tokenID  string

	mu       sync.Mutex
	analyses []*AnalysisFlow
	// events is a capped ring: evHead is the slot the next overwrite takes
	// once len(events) == evCap, evDropped counts overwritten entries. A
	// long-running daemon logs events forever; the ring bounds the memory.
	events     []Event
	evHead     int
	evCap      int
	evDropped  int64
	wg         sync.WaitGroup
	httpClient *http.Client
	watch      *watchHub
	endpoints  map[string]endpointHandle
}

// DefaultEventBuffer is the event-ring capacity when Config.EventBuffer is 0.
const DefaultEventBuffer = 4096

// Config assembles a Platform.
type Config struct {
	Meta     Metadata
	Transfer *globus.TransferService
	Timers   *globus.TimerService
	Identity string
	TokenID  string
	// HTTPClient is used by ingestion polls (default http.DefaultClient).
	HTTPClient *http.Client
	// EventBuffer caps the in-memory activity log (default
	// DefaultEventBuffer); the oldest events are dropped past the cap.
	EventBuffer int
}

// NewPlatform validates the configuration and returns a platform.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Meta == nil {
		return nil, errors.New("aero: Config.Meta is required")
	}
	if cfg.Identity == "" {
		return nil, errors.New("aero: Config.Identity is required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	evCap := cfg.EventBuffer
	if evCap <= 0 {
		evCap = DefaultEventBuffer
	}
	return &Platform{
		Meta:       cfg.Meta,
		Transfer:   cfg.Transfer,
		Timers:     cfg.Timers,
		identity:   cfg.Identity,
		tokenID:    cfg.TokenID,
		httpClient: hc,
		evCap:      evCap,
		watch:      newWatchHub(),
	}, nil
}

func (p *Platform) logEvent(kind, flow, detail string) {
	mEventsLogged.Inc()
	ev := Event{Time: time.Now(), Kind: kind, Flow: flow, Detail: detail}
	p.mu.Lock()
	if len(p.events) < p.evCap {
		p.events = append(p.events, ev)
	} else {
		p.events[p.evHead] = ev
		p.evHead = (p.evHead + 1) % p.evCap
		p.evDropped++
		mEventsDropped.Inc()
	}
	p.mu.Unlock()
}

// Events returns a copy of the activity log, oldest first. Once the ring
// is full it holds the newest EventBuffer events.
func (p *Platform) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, 0, len(p.events))
	out = append(out, p.events[p.evHead:]...)
	return append(out, p.events[:p.evHead]...)
}

// EventsDropped reports how many events the capped ring has overwritten.
func (p *Platform) EventsDropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evDropped
}

// WaitIdle blocks until all asynchronously dispatched analysis runs finish.
func (p *Platform) WaitIdle() { p.wg.Wait() }

// StorageTarget names the collection where a flow stores its artifacts.
type StorageTarget struct {
	Endpoint   *globus.Endpoint
	Collection string
}

func (t StorageTarget) valid() bool { return t.Endpoint != nil && t.Collection != "" }

// IngestionSpec registers a polling data source (paper §2.2: "a user
// specifies the polling frequency, a URL from which to retrieve the data, a
// function to run on the data ... and a Globus Compute endpoint where the
// function will run").
type IngestionSpec struct {
	Name string
	// URL is polled for updates; any HTTP source works, including the
	// simulated wastewater feed.
	URL string
	// PollInterval drives an automatic timer; 0 means manual Poll only.
	PollInterval time.Duration
	// Compute runs the validation/transformation function.
	Compute *globus.ComputeEndpoint
	// TransformID is the registered function to apply to fetched data.
	TransformID string
	// Storage receives both raw and transformed artifacts.
	Storage StorageTarget
}

// IngestionFlow is a registered ingestion pipeline. RawUUID identifies the
// fetched source data; OutputUUID identifies the transformed product that
// analysis flows can subscribe to.
type IngestionFlow struct {
	ID         string
	Name       string
	RawUUID    string
	OutputUUID string

	platform *Platform
	spec     IngestionSpec
	timer    *globus.Timer

	mu sync.Mutex // serializes polls
}

// RegisterIngestion creates the metadata identities and (optionally) the
// polling timer for an ingestion flow, returning the flow handle whose
// OutputUUID downstream analyses subscribe to.
func (p *Platform) RegisterIngestion(spec IngestionSpec) (*IngestionFlow, error) {
	if spec.Name == "" || spec.URL == "" {
		return nil, errors.New("aero: ingestion needs Name and URL")
	}
	if spec.Compute == nil || spec.TransformID == "" {
		return nil, errors.New("aero: ingestion needs Compute and TransformID")
	}
	if !spec.Storage.valid() {
		return nil, errors.New("aero: ingestion needs a Storage target")
	}
	// Re-registration against a recovered metadata store adopts the
	// existing identities instead of minting duplicates, so a daemon
	// restart with -data-dir is idempotent.
	rawUUID, outUUID, flowID := "", "", ""
	if prev, err := p.findFlow(spec.Name, IngestionKind); err != nil {
		return nil, err
	} else if prev != nil {
		if len(prev.OutputUUIDs) != 2 {
			return nil, fmt.Errorf("aero: existing flow %s (%s) is not an ingestion registration", prev.ID, spec.Name)
		}
		flowID, rawUUID, outUUID = prev.ID, prev.OutputUUIDs[0], prev.OutputUUIDs[1]
	} else {
		raw, err := p.Meta.CreateData(spec.Name+"/raw", spec.URL)
		if err != nil {
			return nil, err
		}
		out, err := p.Meta.CreateData(spec.Name+"/transformed", "")
		if err != nil {
			return nil, err
		}
		rec, err := p.Meta.CreateFlow(FlowRecord{
			Name:        spec.Name,
			Kind:        IngestionKind,
			OutputUUIDs: []string{raw.UUID, out.UUID},
		})
		if err != nil {
			return nil, err
		}
		flowID, rawUUID, outUUID = rec.ID, raw.UUID, out.UUID
	}
	flow := &IngestionFlow{
		ID: flowID, Name: spec.Name,
		RawUUID: rawUUID, OutputUUID: outUUID,
		platform: p, spec: spec,
	}
	if spec.PollInterval > 0 && p.Timers != nil {
		t, err := p.Timers.Schedule(p.tokenID, spec.Name+"/poll", spec.PollInterval, func() {
			if _, err := flow.Poll(); err != nil {
				p.logEvent("ingest.error", flow.ID, err.Error())
			}
		})
		if err != nil {
			return nil, err
		}
		flow.timer = t
	}
	return flow, nil
}

// findFlow returns the registered flow named name of the given kind, or
// nil if none exists.
func (p *Platform) findFlow(name string, kind FlowKind) (*FlowRecord, error) {
	flows, err := p.Meta.ListFlows()
	if err != nil {
		return nil, err
	}
	for _, f := range flows {
		if f.Name == name && f.Kind == kind {
			return f, nil
		}
	}
	return nil, nil
}

// Timer exposes the flow's poll timer (nil for manual flows).
func (f *IngestionFlow) Timer() *globus.Timer { return f.timer }

// Poll fetches the source once. If the content checksum differs from the
// latest recorded raw version, the update path runs: store raw, transform
// on the compute endpoint, store output, version both, record provenance,
// and trigger subscribed analyses. It reports whether an update occurred.
func (f *IngestionFlow) Poll() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mIngestPolls.Inc()
	span := obs.StartSpan("aero.ingest.poll")
	span.SetDetail(f.Name)
	start := time.Now()
	updated, err := f.pollLocked(span)
	mIngestPoll.ObserveSince(start)
	switch {
	case err != nil:
		mIngestErrors.Inc()
	case updated:
		mIngestUpdates.Inc()
	default:
		mIngestNoChange.Inc()
	}
	span.EndErr(err)
	return updated, err
}

// pollLocked is the poll body; the caller holds f.mu and owns the span.
func (f *IngestionFlow) pollLocked(span *obs.Span) (bool, error) {
	p := f.platform

	resp, err := p.httpClient.Get(f.spec.URL)
	if err != nil {
		return false, fmt.Errorf("aero: poll %s: %w", f.spec.URL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return false, fmt.Errorf("aero: poll read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("aero: poll %s: HTTP %d", f.spec.URL, resp.StatusCode)
	}
	sum := sha256.Sum256(body)
	checksum := hex.EncodeToString(sum[:])

	raw, err := p.Meta.GetData(f.RawUUID)
	if err != nil {
		return false, err
	}
	if latest := raw.Latest(); latest != nil && latest.Checksum == checksum {
		p.logEvent("ingest.nochange", f.ID, f.spec.URL)
		return false, nil
	}
	versionNum := len(raw.Versions) + 1

	// 1. Stage the raw data to the user's storage endpoint.
	rawPath := fmt.Sprintf("raw/%s/v%d.csv", f.Name, versionNum)
	if err := f.spec.Storage.Endpoint.Put(f.spec.Storage.Collection, rawPath, p.identity, body); err != nil {
		return false, fmt.Errorf("aero: store raw: %w", err)
	}
	rawRec, err := p.Meta.AppendVersion(f.RawUUID, Version{
		Checksum: checksum, Size: len(body),
		Endpoint: f.spec.Storage.Endpoint.Name, Collection: f.spec.Storage.Collection, Path: rawPath,
	})
	if err != nil {
		return false, err
	}

	// 2. Run the user's validation/transformation function on the compute
	// endpoint with the data as input.
	tspan := span.StartChild("aero.ingest.transform")
	transformed, err := f.spec.Compute.Call(p.tokenID, f.spec.TransformID, body)
	tspan.EndErr(err)
	if err != nil {
		p.logEvent("ingest.error", f.ID, err.Error())
		return false, fmt.Errorf("aero: transform: %w", err)
	}

	// 3. Upload the transformed output and version it.
	outPath := fmt.Sprintf("data/%s/v%d.csv", f.Name, versionNum)
	sspan := span.StartChild("aero.ingest.store")
	if err := f.spec.Storage.Endpoint.Put(f.spec.Storage.Collection, outPath, p.identity, transformed); err != nil {
		sspan.EndErr(err)
		return false, fmt.Errorf("aero: store transformed: %w", err)
	}
	sspan.End()
	outSum := sha256.Sum256(transformed)
	outRec, err := p.Meta.AppendVersion(f.OutputUUID, Version{
		Checksum: hex.EncodeToString(outSum[:]), Size: len(transformed),
		Endpoint: f.spec.Storage.Endpoint.Name, Collection: f.spec.Storage.Collection, Path: outPath,
	})
	if err != nil {
		return false, err
	}

	// 4. Provenance and run accounting.
	_ = p.Meta.AddProvenance(ProvenanceEdge{
		FlowID:    f.ID,
		InputUUID: f.RawUUID, InputVersion: rawRec.Latest().Num,
		OutputUUID: f.OutputUUID, OutputVersion: outRec.Latest().Num,
		Timestamp: time.Now(),
	})
	_ = p.Meta.RecordRun(f.ID, time.Now())
	p.logEvent("ingest.update", f.ID, fmt.Sprintf("%s v%d", f.OutputUUID, outRec.Latest().Num))

	// 5. Trigger downstream analyses.
	p.notifyUpdate(f.OutputUUID, outRec.Latest().Num)
	return true, nil
}

// AnalysisSpec registers an analysis triggered by data updates. Input data
// is staged from storage, the function runs on the compute endpoint, and
// outputs are stored and versioned (§2.2).
type AnalysisSpec struct {
	Name string
	// InputUUIDs are the data identities that trigger the flow.
	InputUUIDs []string
	Policy     TriggerPolicy
	Compute    *globus.ComputeEndpoint
	// AnalyzeID is the registered harness function. Its payload is a
	// JSON-encoded AnalysisRequest; it must return EncodeOutputs(...) with
	// exactly the names declared in OutputNames.
	AnalyzeID string
	// OutputNames declare the flow's products; each gets its own UUID.
	OutputNames []string
	Storage     StorageTarget
	// MaxRetries re-runs a failed analysis execution (transient compute
	// errors); 0 means a single attempt.
	MaxRetries int
}

// AnalysisRequest is the payload delivered to analysis functions.
type AnalysisRequest struct {
	Flow   string          `json:"flow"`
	Inputs []AnalysisInput `json:"inputs"`
}

// AnalysisInput carries one input's identity, version, and bytes.
type AnalysisInput struct {
	UUID    string `json:"uuid"`
	Version int    `json:"version"`
	Data    []byte `json:"data"`
}

// EncodeOutputs packs named outputs into the wire format analysis functions
// return.
func EncodeOutputs(outputs map[string][]byte) ([]byte, error) {
	return json.Marshal(outputs)
}

// DecodeOutputs unpacks the analysis function result.
func DecodeOutputs(data []byte) (map[string][]byte, error) {
	var out map[string][]byte
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("aero: decode outputs: %w", err)
	}
	return out, nil
}

// AnalysisFlow is a registered analysis. OutputUUIDs (ordered as
// OutputNames) can be used as inputs to further flows, exactly as the
// paper chains R(t) analyses into the aggregation step.
type AnalysisFlow struct {
	ID          string
	Name        string
	OutputUUIDs []string

	platform *Platform
	spec     AnalysisSpec

	mu sync.Mutex
	// pendingVersion[uuid] is the newest unconsumed version per input.
	pendingVersion map[string]int
	// consumedVersion[uuid] is the last version used in a run.
	consumedVersion map[string]int
	runs            int
}

// RegisterAnalysis creates the flow's output identities and subscribes it
// to its inputs. Registration returns the flow whose OutputUUIDs identify
// the analysis products.
func (p *Platform) RegisterAnalysis(spec AnalysisSpec) (*AnalysisFlow, error) {
	if spec.Name == "" {
		return nil, errors.New("aero: analysis needs a Name")
	}
	if len(spec.InputUUIDs) == 0 {
		return nil, errors.New("aero: analysis needs at least one input UUID")
	}
	if spec.Compute == nil || spec.AnalyzeID == "" {
		return nil, errors.New("aero: analysis needs Compute and AnalyzeID")
	}
	if len(spec.OutputNames) == 0 {
		return nil, errors.New("aero: analysis needs at least one output name")
	}
	if !spec.Storage.valid() {
		return nil, errors.New("aero: analysis needs a Storage target")
	}
	// Inputs must exist.
	for _, u := range spec.InputUUIDs {
		if _, err := p.Meta.GetData(u); err != nil {
			return nil, fmt.Errorf("aero: unknown input %s: %w", u, err)
		}
	}
	// Adopt an existing registration on re-register (recovered store).
	var flowID string
	var outUUIDs []string
	if prev, err := p.findFlow(spec.Name, AnalysisKind); err != nil {
		return nil, err
	} else if prev != nil {
		if len(prev.OutputUUIDs) != len(spec.OutputNames) {
			return nil, fmt.Errorf("aero: existing flow %s (%s) declares %d outputs, spec declares %d",
				prev.ID, spec.Name, len(prev.OutputUUIDs), len(spec.OutputNames))
		}
		flowID = prev.ID
		outUUIDs = append([]string(nil), prev.OutputUUIDs...)
	} else {
		for _, name := range spec.OutputNames {
			rec, err := p.Meta.CreateData(spec.Name+"/"+name, "")
			if err != nil {
				return nil, err
			}
			outUUIDs = append(outUUIDs, rec.UUID)
		}
		rec, err := p.Meta.CreateFlow(FlowRecord{
			Name:        spec.Name,
			Kind:        AnalysisKind,
			InputUUIDs:  append([]string(nil), spec.InputUUIDs...),
			OutputUUIDs: append([]string(nil), outUUIDs...),
		})
		if err != nil {
			return nil, err
		}
		flowID = rec.ID
	}
	flow := &AnalysisFlow{
		ID: flowID, Name: spec.Name, OutputUUIDs: outUUIDs,
		platform: p, spec: spec,
		pendingVersion:  map[string]int{},
		consumedVersion: map[string]int{},
	}
	p.mu.Lock()
	p.analyses = append(p.analyses, flow)
	p.mu.Unlock()
	return flow, nil
}

// Runs reports how many times the analysis has executed.
func (f *AnalysisFlow) Runs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

// notifyUpdate routes a data-version event to subscribed analyses,
// dispatching eligible runs asynchronously.
func (p *Platform) notifyUpdate(uuid string, version int) {
	now := time.Now()
	p.mu.Lock()
	subs := append([]*AnalysisFlow(nil), p.analyses...)
	p.mu.Unlock()
	p.watch.publish(DataUpdate{UUID: uuid, Version: version, Time: now})
	for _, flow := range subs {
		flow.observe(uuid, version, now)
	}
}

// observe records one input update; at is when the update was published
// (watch-to-trigger latency is measured from it).
func (f *AnalysisFlow) observe(uuid string, version int, at time.Time) {
	subscribed := false
	for _, u := range f.spec.InputUUIDs {
		if u == uuid {
			subscribed = true
			break
		}
	}
	if !subscribed {
		return
	}
	f.mu.Lock()
	f.pendingVersion[uuid] = version
	ready := false
	switch f.spec.Policy {
	case TriggerAny:
		ready = true
	case TriggerAll:
		ready = true
		for _, u := range f.spec.InputUUIDs {
			if f.pendingVersion[u] <= f.consumedVersion[u] {
				ready = false
				break
			}
		}
	}
	var consume map[string]int
	if ready {
		consume = map[string]int{}
		for _, u := range f.spec.InputUUIDs {
			v := f.pendingVersion[u]
			if v == 0 {
				v = f.consumedVersion[u]
			}
			consume[u] = v
			f.consumedVersion[u] = v
		}
		f.runs++
	}
	f.mu.Unlock()
	if !ready {
		return
	}
	mFlowsTriggered.Inc()
	mWatchTrigger.ObserveSince(at)
	p := f.platform
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		span := obs.StartSpan("aero.analysis")
		span.SetDetail(f.Name)
		var err error
		for attempt := 0; attempt <= f.spec.MaxRetries; attempt++ {
			if err = f.execute(consume); err == nil {
				if attempt > 0 {
					p.logEvent("analysis.retried", f.ID, fmt.Sprintf("succeeded on attempt %d", attempt+1))
				}
				mAnalysisRuns.Inc()
				span.End()
				return
			}
			mAnalysisErrors.Inc()
			p.logEvent("analysis.error", f.ID, err.Error())
		}
		span.EndErr(err)
	}()
}

// execute stages inputs, runs the harness function on the compute endpoint,
// and stores/versions the outputs.
func (f *AnalysisFlow) execute(versions map[string]int) error {
	p := f.platform
	req := AnalysisRequest{Flow: f.Name}
	for _, u := range f.spec.InputUUIDs {
		rec, err := p.Meta.GetData(u)
		if err != nil {
			return err
		}
		ver := rec.Latest()
		if ver == nil {
			return fmt.Errorf("aero: input %s has no versions", u)
		}
		// Download the input from the user's storage endpoint (the data
		// plane); the metadata service only supplied coordinates.
		if ver.Endpoint != f.spec.Storage.Endpoint.Name {
			return fmt.Errorf("aero: input %s stored on unknown endpoint %q", u, ver.Endpoint)
		}
		data, err := f.spec.Storage.Endpoint.Get(ver.Collection, ver.Path, p.identity)
		if err != nil {
			return fmt.Errorf("aero: stage input %s: %w", u, err)
		}
		req.Inputs = append(req.Inputs, AnalysisInput{UUID: u, Version: versions[u], Data: data})
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	result, err := f.spec.Compute.Call(p.tokenID, f.spec.AnalyzeID, payload)
	if err != nil {
		return fmt.Errorf("aero: analysis %s: %w", f.Name, err)
	}
	outputs, err := DecodeOutputs(result)
	if err != nil {
		return err
	}
	now := time.Now()
	for i, name := range f.spec.OutputNames {
		data, ok := outputs[name]
		if !ok {
			return fmt.Errorf("aero: analysis %s did not produce declared output %q", f.Name, name)
		}
		uuid := f.OutputUUIDs[i]
		rec, err := p.Meta.GetData(uuid)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("data/%s/%s/v%d", f.Name, name, len(rec.Versions)+1)
		if err := f.spec.Storage.Endpoint.Put(f.spec.Storage.Collection, path, p.identity, data); err != nil {
			return fmt.Errorf("aero: store output %q: %w", name, err)
		}
		sum := sha256.Sum256(data)
		outRec, err := p.Meta.AppendVersion(uuid, Version{
			Checksum: hex.EncodeToString(sum[:]), Size: len(data),
			Endpoint: f.spec.Storage.Endpoint.Name, Collection: f.spec.Storage.Collection, Path: path,
		})
		if err != nil {
			return err
		}
		for _, in := range req.Inputs {
			_ = p.Meta.AddProvenance(ProvenanceEdge{
				FlowID:    f.ID,
				InputUUID: in.UUID, InputVersion: in.Version,
				OutputUUID: uuid, OutputVersion: outRec.Latest().Num,
				Timestamp: now,
			})
		}
		p.notifyUpdate(uuid, outRec.Latest().Num)
	}
	_ = p.Meta.RecordRun(f.ID, now)
	p.logEvent("analysis.run", f.ID, f.Name)
	return nil
}

// FetchLatest downloads the current bytes of a data UUID from its recorded
// storage location — the convenience used by stakeholders and tests to read
// shared outputs.
func (p *Platform) FetchLatest(uuid string, endpoint *globus.Endpoint) ([]byte, *Version, error) {
	rec, err := p.Meta.GetData(uuid)
	if err != nil {
		return nil, nil, err
	}
	ver := rec.Latest()
	if ver == nil {
		return nil, nil, fmt.Errorf("aero: %s has no versions", uuid)
	}
	if endpoint == nil || endpoint.Name != ver.Endpoint {
		return nil, nil, fmt.Errorf("aero: %s is stored on endpoint %q", uuid, ver.Endpoint)
	}
	data, err := endpoint.Get(ver.Collection, ver.Path, p.identity)
	if err != nil {
		return nil, nil, err
	}
	return data, ver, nil
}
