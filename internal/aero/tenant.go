package aero

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Multi-tenant namespaces for the metadata store. Every data and flow
// identity carries its tenant as an ID prefix — "<tenant>:data-00000001" —
// and the legacy tenant "" keeps the unprefixed IDs, so single-tenant
// stores, snapshots, and WALs are byte-identical to what they were before
// tenancy existed. Isolation is enforced HERE, in the unexported
// tenant-parameterized store methods every API path funnels through (the
// public Store methods delegate with tenant ""; TenantView delegates with
// its tenant; the HTTP server picks the view from the authenticated
// identity) — never in individual handlers. A cross-tenant ID resolves to
// ErrNotFound, indistinguishable from a nonexistent one, so the namespace
// does not leak existence.

// tenantOf returns the tenant prefix of a namespaced ID — the part before
// the first ':' — or "" for a legacy unprefixed ID.
func tenantOf(id string) string {
	if i := strings.IndexByte(id, ':'); i >= 0 {
		return id[:i]
	}
	return ""
}

// tenantIDFor renders the ID a create op assigns in tenant's namespace.
func tenantIDFor(tenant, prefix string, seq int) string {
	if tenant == "" {
		return idFor(prefix, seq)
	}
	return tenant + ":" + idFor(prefix, seq)
}

// ErrBadTenant rejects tenant names that would break the ID grammar.
var ErrBadTenant = errors.New("aero: tenant name must not contain ':'")

// TenantView is the Metadata surface of one tenant's namespace: the same
// Store, every read and write scoped to the tenant. It implements Metadata,
// so platforms and the HTTP server use it interchangeably with the Store.
type TenantView struct {
	s      *Store
	tenant string
}

// Tenant returns the store scoped to tenant's namespace. Tenant("")
// yields the legacy unprefixed namespace — exactly the public Store API.
func (s *Store) Tenant(tenant string) *TenantView {
	return &TenantView{s: s, tenant: tenant}
}

// Name reports which tenant the view is scoped to.
func (v *TenantView) Name() string { return v.tenant }

func (v *TenantView) CreateData(name, sourceURL string) (*DataRecord, error) {
	return v.s.createData(v.tenant, name, sourceURL)
}
func (v *TenantView) GetData(uuid string) (*DataRecord, error) {
	return v.s.getData(v.tenant, uuid)
}
func (v *TenantView) AppendVersion(uuid string, ver Version) (*DataRecord, error) {
	return v.s.appendVersion(v.tenant, uuid, ver)
}
func (v *TenantView) ListData() ([]*DataRecord, error) {
	return v.s.listData(v.tenant)
}
func (v *TenantView) CreateFlow(rec FlowRecord) (*FlowRecord, error) {
	return v.s.createFlow(v.tenant, rec)
}
func (v *TenantView) GetFlow(id string) (*FlowRecord, error) {
	return v.s.getFlow(v.tenant, id)
}
func (v *TenantView) ListFlows() ([]*FlowRecord, error) {
	return v.s.listFlows(v.tenant)
}
func (v *TenantView) RecordRun(flowID string, at time.Time) error {
	return v.s.recordRun(v.tenant, flowID, at)
}
func (v *TenantView) AddProvenance(edge ProvenanceEdge) error {
	return v.s.addProvenance(v.tenant, edge)
}
func (v *TenantView) Provenance(uuid string) ([]ProvenanceEdge, error) {
	return v.s.provenance(v.tenant, uuid)
}

// SubscribeUpdates opens a streaming watch over the view's namespace,
// optionally narrowed to one uuid (which must be in-namespace).
func (v *TenantView) SubscribeUpdates(uuid string, buffer int) (*Subscription, error) {
	return v.s.SubscribeUpdates(v.tenant, uuid, buffer)
}

// ownsLocked reports whether id exists in tenant's namespace; the tenant
// check comes first so a cross-tenant probe costs the same as a miss.
func owned(tenant, id string) bool { return tenantOf(id) == tenant }

// --- tenant-parameterized store core -----------------------------------
//
// These are the single enforcement point: every public Store method and
// every TenantView method lands here with an explicit tenant, and the
// namespace checks (ID prefix on reads, counter selection on creates,
// edge endpoints on provenance) happen once.

// seqLocked returns tenant's next ID-counter value. The caller holds s.mu.
func (s *Store) seqLocked(tenant string) int {
	if tenant == "" {
		return s.next + 1
	}
	return s.nextT[tenant] + 1
}

// bumpSeqLocked advances tenant's counter to at least seq — the
// applyLocked half of ID allocation, replay-safe because the consumed
// value rides in the mutation record. The caller holds s.mu.
func (s *Store) bumpSeqLocked(tenant string, seq int) {
	if tenant == "" {
		if seq > s.next {
			s.next = seq
		}
		return
	}
	if s.nextT == nil {
		s.nextT = map[string]int{}
	}
	if seq > s.nextT[tenant] {
		s.nextT[tenant] = seq
	}
}

func (s *Store) createData(tenant, name, sourceURL string) (*DataRecord, error) {
	if name == "" {
		return nil, errors.New("aero: data name required")
	}
	if strings.ContainsRune(tenant, ':') {
		return nil, ErrBadTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seqLocked(tenant)
	m := &mutation{Op: opCreateData, Seq: seq, UUID: tenantIDFor(tenant, "data", seq), Name: name, SourceURL: sourceURL}
	if err := s.commitLocked(m); err != nil {
		return nil, err
	}
	return cloneData(s.data[m.UUID]), nil
}

func (s *Store) getData(tenant, uuid string) (*DataRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.data[uuid]
	if !ok || !owned(tenant, uuid) {
		return nil, fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	return cloneData(rec), nil
}

func (s *Store) appendVersion(tenant, uuid string, v Version) (*DataRecord, error) {
	s.mu.Lock()
	rec, ok := s.data[uuid]
	if !ok || !owned(tenant, uuid) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	v.Num = len(rec.Versions) + 1
	if v.Timestamp.IsZero() {
		v.Timestamp = time.Now()
	}
	if err := s.commitLocked(&mutation{Op: opAppendVersion, UUID: uuid, Version: &v}); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	out := cloneData(rec)
	s.mu.Unlock()
	// Live-path side effect, outside applyLocked so WAL replay never
	// re-publishes, and outside s.mu so slow fan-out never blocks commits.
	s.hub.publish(DataUpdate{UUID: uuid, Version: v.Num, Time: v.Timestamp})
	return out, nil
}

func (s *Store) listData(tenant string) ([]*DataRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*DataRecord, 0, len(s.data))
	for _, rec := range s.data {
		if owned(tenant, rec.UUID) {
			out = append(out, cloneData(rec))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out, nil
}

func (s *Store) createFlow(tenant string, rec FlowRecord) (*FlowRecord, error) {
	if rec.Name == "" {
		return nil, errors.New("aero: flow name required")
	}
	if strings.ContainsRune(tenant, ':') {
		return nil, ErrBadTenant
	}
	for _, u := range rec.InputUUIDs {
		if !owned(tenant, u) {
			return nil, fmt.Errorf("%w: data %s", ErrNotFound, u)
		}
	}
	for _, u := range rec.OutputUUIDs {
		if !owned(tenant, u) {
			return nil, fmt.Errorf("%w: data %s", ErrNotFound, u)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seqLocked(tenant)
	rec.ID = tenantIDFor(tenant, "flow", seq)
	if err := s.commitLocked(&mutation{Op: opCreateFlow, Seq: seq, Flow: &rec}); err != nil {
		return nil, err
	}
	out := rec
	return &out, nil
}

func (s *Store) getFlow(tenant, id string) (*FlowRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.flows[id]
	if !ok || !owned(tenant, id) {
		return nil, fmt.Errorf("%w: flow %s", ErrNotFound, id)
	}
	cp := *f
	return &cp, nil
}

func (s *Store) listFlows(tenant string) ([]*FlowRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*FlowRecord, 0, len(s.flows))
	for _, f := range s.flows {
		if owned(tenant, f.ID) {
			cp := *f
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (s *Store) recordRun(tenant, flowID string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.flows[flowID]; !ok || !owned(tenant, flowID) {
		return fmt.Errorf("%w: flow %s", ErrNotFound, flowID)
	}
	return s.commitLocked(&mutation{Op: opRecordRun, FlowID: flowID, At: at})
}

func (s *Store) addProvenance(tenant string, edge ProvenanceEdge) error {
	// Every endpoint of the edge must live in the tenant's namespace —
	// provenance is the one structure that references IDs by value, so an
	// unchecked edge would smuggle foreign IDs into a tenant's lineage.
	if !owned(tenant, edge.InputUUID) || !owned(tenant, edge.OutputUUID) || !owned(tenant, edge.FlowID) {
		return fmt.Errorf("%w: provenance edge crosses tenant boundary", ErrNotFound)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked(&mutation{Op: opAddProvenance, Edge: &edge})
}

func (s *Store) provenance(tenant, uuid string) ([]ProvenanceEdge, error) {
	if !owned(tenant, uuid) {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ProvenanceEdge
	for _, e := range s.prov {
		if e.InputUUID == uuid || e.OutputUUID == uuid {
			out = append(out, e)
		}
	}
	return out, nil
}

// SubscribeUpdates opens a streaming watch scoped to tenant's namespace:
// only updates of the tenant's data are delivered. Empty uuid watches the
// whole namespace; a non-empty uuid must belong to the tenant. Updates are
// published by live AppendVersion commits (never by WAL replay). Cancel
// the subscription when done.
func (s *Store) SubscribeUpdates(tenant, uuid string, buffer int) (*Subscription, error) {
	if uuid != "" && !owned(tenant, uuid) {
		return nil, fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	return s.hub.subscribe(tenant, uuid, buffer, true), nil
}

// Tenants lists every tenant that has created an identity, legacy ""
// excluded, sorted.
func (s *Store) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nextT))
	for t := range s.nextT {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
