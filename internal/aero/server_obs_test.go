package aero

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osprey/internal/obs"
)

// The aero server must expose the process-wide observability layer:
// /metrics serves the obs.Default snapshot and /trace the recent-span
// ring, and the server's own HTTP traffic shows up in the snapshot.
func TestServerMetricsAndTraceEndpoints(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	// Generate some traffic so the HTTP counters are non-zero.
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One data mutation so the store path is exercised too.
	resp, err := srv.Client().Post(srv.URL+"/data", "application/json",
		strings.NewReader(`{"name":"obs-test","source_url":"http://example.invalid"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /data = %d", resp.StatusCode)
	}
	// A span recorded anywhere in the process must be retrievable.
	obs.StartSpan("aero.servertest.span").End()

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not a valid obs.Snapshot: %v", err)
	}
	if snap.Counters["aero.http.requests"] < 4 {
		t.Fatalf("aero.http.requests = %d, want >= 4", snap.Counters["aero.http.requests"])
	}
	if h, ok := snap.Histograms["aero.http.request_seconds"]; !ok || h.Count < 4 {
		t.Fatalf("aero.http.request_seconds missing or empty: %+v", snap.Histograms)
	}

	resp, err = srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", resp.StatusCode)
	}
	var trace obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("/trace is not a valid obs.TraceSnapshot: %v", err)
	}
	found := false
	for _, s := range trace.Spans {
		if s.Name == "aero.servertest.span" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("span recorded before the request not present in /trace (got %d spans)", len(trace.Spans))
	}
}
