package aero

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// pushVersion stores bytes on the rig endpoint and versions the identity.
func pushVersion(t *testing.T, rig *testRig, uuid, path, content string) {
	t.Helper()
	p := rig.platform
	if err := rig.endpoint.Put("osprey", path, "alice", []byte(content)); err != nil {
		t.Fatal(err)
	}
	rec, err := p.Meta.AppendVersion(uuid, Version{
		Checksum: content, Size: len(content),
		Endpoint: "eagle", Collection: "osprey", Path: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.notifyUpdate(uuid, rec.Latest().Num)
}

func TestSubscribeReceivesUpdates(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	d, _ := p.Meta.CreateData("watched", "")
	ch, cancel := p.Subscribe(d.UUID, 4)
	defer cancel()

	pushVersion(t, rig, d.UUID, "w/v1", "one")
	pushVersion(t, rig, d.UUID, "w/v2", "two")

	for want := 1; want <= 2; want++ {
		select {
		case u := <-ch:
			if u.UUID != d.UUID || u.Version != want {
				t.Fatalf("update %d = %+v", want, u)
			}
		case <-time.After(time.Second):
			t.Fatalf("update %d never arrived", want)
		}
	}
}

func TestSubscribeWildcardAndFiltering(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	a, _ := p.Meta.CreateData("a", "")
	b, _ := p.Meta.CreateData("b", "")

	all, cancelAll := p.Subscribe("", 8)
	defer cancelAll()
	onlyA, cancelA := p.Subscribe(a.UUID, 8)
	defer cancelA()

	pushVersion(t, rig, a.UUID, "a/v1", "x")
	pushVersion(t, rig, b.UUID, "b/v1", "y")

	gotAll := 0
	timeout := time.After(time.Second)
	for gotAll < 2 {
		select {
		case <-all:
			gotAll++
		case <-timeout:
			t.Fatalf("wildcard subscriber got %d of 2", gotAll)
		}
	}
	select {
	case u := <-onlyA:
		if u.UUID != a.UUID {
			t.Fatalf("filtered subscriber got %s", u.UUID)
		}
	case <-time.After(time.Second):
		t.Fatal("filtered subscriber got nothing")
	}
	select {
	case u := <-onlyA:
		t.Fatalf("filtered subscriber got extra event %+v", u)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubscribeCancelClosesChannel(t *testing.T) {
	rig := newRig(t, nil)
	ch, cancel := rig.platform.Subscribe("", 1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	d, _ := p.Meta.CreateData("busy", "")
	_, cancel := p.Subscribe(d.UUID, 1) // tiny buffer, never drained
	defer cancel()
	for i := 0; i < 5; i++ {
		pushVersion(t, rig, d.UUID, "busy/v"+string(rune('0'+i)), string(rune('a'+i)))
	}
	if p.DroppedUpdates() == 0 {
		t.Fatal("expected dropped updates for a full buffer")
	}
}

func TestPruneVersions(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	p.RegisterEndpoint(rig.endpoint)
	d, _ := p.Meta.CreateData("history", "")
	for i := 1; i <= 5; i++ {
		pushVersion(t, rig, d.UUID, "h/v"+string(rune('0'+i)), string(rune('a'+i)))
	}
	removed, err := p.PruneVersions(d.UUID, RetentionPolicy{KeepLast: 2})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed %d objects, want 3", removed)
	}
	rec, _ := p.Meta.GetData(d.UUID)
	if len(rec.Versions) != 5 {
		t.Fatal("metadata rows must survive pruning")
	}
	for i, v := range rec.Versions {
		pruned := v.Path == ""
		if i < 3 && !pruned {
			t.Fatalf("version %d not pruned", v.Num)
		}
		if i >= 3 && pruned {
			t.Fatalf("recent version %d pruned", v.Num)
		}
	}
	// Remaining objects still fetchable.
	if _, _, err := p.FetchLatest(d.UUID, rig.endpoint); err != nil {
		t.Fatal(err)
	}
	// Pruning again is a no-op.
	removed, err = p.PruneVersions(d.UUID, RetentionPolicy{KeepLast: 2})
	if err != nil || removed != 0 {
		t.Fatalf("idempotent prune: %d, %v", removed, err)
	}
}

func TestPruneValidation(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	if _, err := p.PruneVersions("data-x", RetentionPolicy{}); err == nil {
		t.Fatal("zero retention accepted")
	}
	if _, err := p.PruneVersions("data-bogus", RetentionPolicy{KeepLast: 1}); err == nil {
		t.Fatal("unknown uuid accepted")
	}
}

func TestSubscriberSeesIngestionPipeline(t *testing.T) {
	// End-to-end: a watch on an ingestion output fires when Poll ingests.
	rig := newRig(t, nil)
	p := rig.platform
	src := &mutableSource{}
	src.set("v1")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()
	ident, _ := rig.compute.RegisterFunction(rig.token.ID, "id", func(ctx context.Context, b []byte) ([]byte, error) {
		return b, nil
	})
	flow, err := p.RegisterIngestion(IngestionSpec{
		Name: "watched-feed", URL: srv.URL, Compute: rig.compute, TransformID: ident,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := p.Subscribe(flow.OutputUUID, 2)
	defer cancel()
	if _, err := flow.Poll(); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		if u.Version != 1 {
			t.Fatalf("unexpected version %d", u.Version)
		}
	case <-time.After(time.Second):
		t.Fatal("ingestion did not notify the subscriber")
	}
}

func TestAnalysisRetriesTransientFailures(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	d, _ := p.Meta.CreateData("in", "")

	attempts := 0
	fn, _ := rig.compute.RegisterFunction(rig.token.ID, "flaky", func(ctx context.Context, payload []byte) ([]byte, error) {
		attempts++
		if attempts < 3 {
			return nil, errTransient
		}
		return EncodeOutputs(map[string][]byte{"out": []byte("done")})
	})
	flow, err := p.RegisterAnalysis(AnalysisSpec{
		Name: "flaky-analysis", InputUUIDs: []string{d.UUID}, Policy: TriggerAny,
		Compute: rig.compute, AnalyzeID: fn,
		OutputNames: []string{"out"},
		Storage:     StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
		MaxRetries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pushVersion(t, rig, d.UUID, "in/v1", "x")
	p.WaitIdle()
	if attempts != 3 {
		t.Fatalf("function ran %d times, want 3", attempts)
	}
	data, _, err := p.FetchLatest(flow.OutputUUIDs[0], rig.endpoint)
	if err != nil || string(data) != "done" {
		t.Fatalf("retried analysis output = %q, %v", data, err)
	}
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	if kinds["analysis.error"] != 2 || kinds["analysis.retried"] != 1 {
		t.Fatalf("event log wrong: %v", kinds)
	}
}

var errTransient = errors.New("transient compute failure")

func TestExportDOT(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	src := &mutableSource{}
	src.set("v1")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()
	ident, _ := rig.compute.RegisterFunction(rig.token.ID, "id", func(ctx context.Context, b []byte) ([]byte, error) {
		return b, nil
	})
	ing, err := p.RegisterIngestion(IngestionSpec{
		Name: "dot-feed", URL: srv.URL, Compute: rig.compute, TransformID: ident,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	an, _ := rig.compute.RegisterFunction(rig.token.ID, "an", func(ctx context.Context, payload []byte) ([]byte, error) {
		return EncodeOutputs(map[string][]byte{"o": []byte("y")})
	})
	if _, err := p.RegisterAnalysis(AnalysisSpec{
		Name: "dot-analysis", InputUUIDs: []string{ing.OutputUUID}, Policy: TriggerAny,
		Compute: rig.compute, AnalyzeID: an,
		OutputNames: []string{"o"},
		Storage:     StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	}); err != nil {
		t.Fatal(err)
	}

	dot, err := ExportDOT(p.Meta, "Figure 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph osprey", "rankdir=LR",
		"dot-feed", "dot-analysis",
		"dot-feed/transformed", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every edge must reference declared nodes (syntactic sanity: the
	// analysis input edge points at the ingestion output data node).
	if !strings.Contains(dot, `peripheries=2`) {
		t.Fatal("ingestion flow not double-bordered")
	}
}
