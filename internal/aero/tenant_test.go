package aero

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"osprey/internal/wal"
)

func TestTenantNamespaceIsolation(t *testing.T) {
	store := NewStore()
	alice := store.Tenant("alice")
	bob := store.Tenant("bob")

	ad, err := alice.CreateData("wastewater", "src://a")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := bob.CreateData("wastewater", "src://b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ad.UUID, "alice:data-") || !strings.HasPrefix(bd.UUID, "bob:data-") {
		t.Fatalf("tenant IDs not namespaced: %s / %s", ad.UUID, bd.UUID)
	}

	// Cross-tenant reads are ErrNotFound — indistinguishable from a miss.
	if _, err := bob.GetData(ad.UUID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant GetData = %v, want ErrNotFound", err)
	}
	if _, err := bob.AppendVersion(ad.UUID, Version{Checksum: "x"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant AppendVersion = %v, want ErrNotFound", err)
	}
	if _, err := alice.GetData(ad.UUID); err != nil {
		t.Fatalf("own-tenant GetData: %v", err)
	}

	// Listings are scoped; the legacy "" view sees neither tenant.
	if recs, _ := alice.ListData(); len(recs) != 1 || recs[0].UUID != ad.UUID {
		t.Fatalf("alice ListData = %+v", recs)
	}
	if recs, _ := store.ListData(); len(recs) != 0 {
		t.Fatalf("legacy ListData sees tenant data: %+v", recs)
	}

	// Flows are namespaced the same way.
	af, err := alice.CreateFlow(FlowRecord{Name: "rt", OutputUUIDs: []string{ad.UUID}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(af.ID, "alice:flow-") {
		t.Fatalf("flow ID not namespaced: %s", af.ID)
	}
	if _, err := bob.GetFlow(af.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant GetFlow = %v, want ErrNotFound", err)
	}
	if err := bob.RecordRun(af.ID, time.Now()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant RecordRun = %v, want ErrNotFound", err)
	}

	// A flow may not reference another tenant's data.
	if _, err := bob.CreateFlow(FlowRecord{Name: "steal", InputUUIDs: []string{ad.UUID}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("flow referencing foreign data = %v, want ErrNotFound", err)
	}

	// Provenance edges must stay inside the namespace.
	bad := ProvenanceEdge{FlowID: af.ID, InputUUID: ad.UUID, OutputUUID: bd.UUID}
	if err := alice.AddProvenance(bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant provenance = %v, want ErrNotFound", err)
	}
	good := ProvenanceEdge{FlowID: af.ID, InputUUID: ad.UUID, OutputUUID: ad.UUID}
	if err := alice.AddProvenance(good); err != nil {
		t.Fatal(err)
	}
	if edges, _ := bob.Provenance(ad.UUID); len(edges) != 0 {
		t.Fatalf("cross-tenant Provenance leaked %d edges", len(edges))
	}
	if edges, _ := alice.Provenance(ad.UUID); len(edges) != 1 {
		t.Fatalf("own-tenant Provenance = %d edges, want 1", len(edges))
	}
}

func TestTenantCountersIndependent(t *testing.T) {
	store := NewStore()
	a1, _ := store.Tenant("alice").CreateData("a1", "")
	b1, _ := store.Tenant("bob").CreateData("b1", "")
	l1, _ := store.CreateData("l1", "")
	if a1.UUID != "alice:data-00000001" || b1.UUID != "bob:data-00000001" || l1.UUID != "data-00000001" {
		t.Fatalf("counters not independent: %s %s %s", a1.UUID, b1.UUID, l1.UUID)
	}
	if got := store.Tenants(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Tenants() = %v", got)
	}
}

func TestTenantNameValidation(t *testing.T) {
	store := NewStore()
	if _, err := store.Tenant("a:b").CreateData("x", ""); !errors.Is(err, ErrBadTenant) {
		t.Fatalf("colon tenant accepted: %v", err)
	}
	if _, err := store.Tenant("a:b").CreateFlow(FlowRecord{Name: "f"}); !errors.Is(err, ErrBadTenant) {
		t.Fatalf("colon tenant flow accepted: %v", err)
	}
}

func TestTenantWALRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(l)
	if err != nil {
		t.Fatal(err)
	}
	ad, _ := store.Tenant("alice").CreateData("a", "")
	if _, err := store.Tenant("alice").AppendVersion(ad.UUID, Version{Checksum: "c1"}); err != nil {
		t.Fatal(err)
	}
	bd, _ := store.Tenant("bob").CreateData("b", "")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(dir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	re, err := OpenStore(l2)
	if err != nil {
		t.Fatal(err)
	}
	// State and isolation survive replay.
	rec, err := re.Tenant("alice").GetData(ad.UUID)
	if err != nil || len(rec.Versions) != 1 {
		t.Fatalf("recovered alice data: %+v, %v", rec, err)
	}
	if _, err := re.Tenant("alice").GetData(bd.UUID); !errors.Is(err, ErrNotFound) {
		t.Fatal("isolation lost after replay")
	}
	// Counters continue where each tenant left off.
	a2, _ := re.Tenant("alice").CreateData("a2", "")
	if a2.UUID != "alice:data-00000002" {
		t.Fatalf("alice counter after replay: %s", a2.UUID)
	}
	b2, _ := re.Tenant("bob").CreateData("b2", "")
	if b2.UUID != "bob:data-00000002" {
		t.Fatalf("bob counter after replay: %s", b2.UUID)
	}
}

func TestTenantSnapshotRoundTrip(t *testing.T) {
	store := NewStore()
	ad, _ := store.Tenant("alice").CreateData("a", "")
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "next_tenants") {
		t.Fatal("tenant counters missing from snapshot")
	}
	re := NewStore()
	if err := re.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Tenant("alice").GetData(ad.UUID); err != nil {
		t.Fatal(err)
	}
	a2, _ := re.Tenant("alice").CreateData("a2", "")
	if a2.UUID != "alice:data-00000002" {
		t.Fatalf("counter after load: %s", a2.UUID)
	}
}

func TestLegacySnapshotUnchanged(t *testing.T) {
	// A store that never saw a tenant must serialize exactly as before
	// tenancy existed: no next_tenants key, unprefixed IDs.
	store := NewStore()
	d, _ := store.CreateData("legacy", "")
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "next_tenants") {
		t.Fatal("legacy snapshot grew a next_tenants key")
	}
	if d.UUID != "data-00000001" {
		t.Fatalf("legacy ID changed: %s", d.UUID)
	}
}

func TestSubscribeUpdatesTenantScoping(t *testing.T) {
	store := NewStore()
	alice := store.Tenant("alice")
	bob := store.Tenant("bob")
	ad, _ := alice.CreateData("a", "")
	bd, _ := bob.CreateData("b", "")

	sub, err := alice.SubscribeUpdates("", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	if _, err := alice.AppendVersion(ad.UUID, Version{Checksum: "a1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.AppendVersion(bd.UUID, Version{Checksum: "b1"}); err != nil {
		t.Fatal(err)
	}
	events, dropped, ok := sub.Next(time.Second)
	if !ok || dropped != 0 {
		t.Fatalf("Next: ok=%v dropped=%d", ok, dropped)
	}
	if len(events) != 1 || events[0].UUID != ad.UUID || events[0].Version != 1 {
		t.Fatalf("scoped subscription got %+v", events)
	}
	// Subscribing to a foreign uuid is refused like any cross-tenant read.
	if _, err := store.SubscribeUpdates("bob", ad.UUID, 8); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant subscribe = %v", err)
	}
}

func TestSubscriptionDropOldest(t *testing.T) {
	store := NewStore()
	d, _ := store.CreateData("hot", "")
	sub, err := store.SubscribeUpdates("", d.UUID, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		if _, err := store.AppendVersion(d.UUID, Version{Checksum: "c"}); err != nil {
			t.Fatal(err)
		}
	}
	events, dropped, ok := sub.Next(time.Second)
	if !ok {
		t.Fatal("subscription closed")
	}
	// Bounded queue of 2: the newest two versions survive, three dropped.
	if len(events) != 2 || dropped != 3 {
		t.Fatalf("got %d events, %d dropped; want 2, 3", len(events), dropped)
	}
	if events[0].Version != 4 || events[1].Version != 5 {
		t.Fatalf("drop-oldest kept versions %d,%d; want 4,5", events[0].Version, events[1].Version)
	}
	if events[0].Seq >= events[1].Seq {
		t.Fatalf("sequence not increasing: %d, %d", events[0].Seq, events[1].Seq)
	}
	if sub.Dropped() != 3 {
		t.Fatalf("Dropped() = %d", sub.Dropped())
	}
}

func TestWALReplayDoesNotPublish(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	store, _ := OpenStore(l)
	d, _ := store.CreateData("quiet", "")
	if _, err := store.AppendVersion(d.UUID, Version{Checksum: "c1"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := wal.Open(dir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	re, err := OpenStore(l2)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := re.SubscribeUpdates("", "", 8)
	defer sub.Cancel()
	if events, _, _ := sub.Next(0); len(events) != 0 {
		t.Fatalf("replay published %d events", len(events))
	}
	// A fresh live append does publish.
	if _, err := re.AppendVersion(d.UUID, Version{Checksum: "c2"}); err != nil {
		t.Fatal(err)
	}
	events, _, _ := sub.Next(time.Second)
	if len(events) != 1 || events[0].Version != 2 {
		t.Fatalf("live publish after recovery: %+v", events)
	}
}
