package loadgen

// Sharded-topology support for the harness. A run with Config.Shards >= 2
// replaces the single task stack with a shard group: per shard a
// WAL-backed task DB carrying its shard identity, a TCP server, a chaos
// proxy in front of it (the stable name clients dial across failover),
// and a warm follower replicating the primary's WAL into a standby
// directory. The shard-failover fault kills a primary mid-run and
// promotes its follower; everything else — drivers, workers, invariants —
// sees the group through the same taskConn surface as the single stack.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"osprey/internal/chaos"
	"osprey/internal/emews"
	"osprey/internal/wal"
)

// shardState is one member of the sharded task substrate. The proxy and
// the directories are fixed for the run; the member behind the proxy (db,
// log, server, follower) is swapped under harness.mu by failover.
type shardState struct {
	idx         int
	dirPrimary  string
	dirFollower string
	proxy       *chaos.Proxy

	// Mutable under harness.mu.
	dir        string // current authoritative log directory (audited at teardown)
	db         *emews.DB
	log        *wal.Log
	srv        *emews.Server
	follower   *emews.Follower
	reapStop   context.CancelFunc
	failedOver bool
}

func (h *harness) sharded() bool { return len(h.shards) > 0 }

// bootShards starts the whole shard group. Unlike the single stack,
// sharded runs boot exactly once: the crash faults (reboot in place) are
// rejected up front, and recovery from a primary loss is failover, not a
// reboot.
func (h *harness) bootShards() error {
	n := h.cfg.Shards
	for i := 0; i < n; i++ {
		s := &shardState{
			idx:         i,
			dirPrimary:  shardDir(h.dirTasks, i),
			dirFollower: shardDir(h.dirTasks, i) + "-replica",
		}
		s.dir = s.dirPrimary
		l, err := wal.Open(s.dirPrimary, wal.Options{Name: fmt.Sprintf("wal.loadgen.shard%d", i), Logf: h.cfg.Logf})
		if err != nil {
			h.closeShards()
			return fmt.Errorf("loadgen: open shard %d WAL: %w", i, err)
		}
		db, err := emews.OpenDBShard(l, i, n)
		if err != nil {
			l.Close()
			h.closeShards()
			return fmt.Errorf("loadgen: recover shard %d: %w", i, err)
		}
		db.SetLeaseTimeout(5 * time.Second)
		srv, err := emews.Serve(db, "127.0.0.1:0",
			emews.WithShardIdentity(i, n), emews.WithReplicationSource(l))
		if err != nil {
			l.Close()
			h.closeShards()
			return fmt.Errorf("loadgen: shard %d server: %w", i, err)
		}
		proxy, err := chaos.NewProxy(srv.Addr())
		if err != nil {
			srv.Close()
			l.Close()
			h.closeShards()
			return fmt.Errorf("loadgen: shard %d proxy: %w", i, err)
		}
		// The follower tails the primary server directly, not through the
		// proxy: replication is daemon-to-daemon traffic on the cluster
		// fabric, while the chaos faults model the worker-facing network.
		follower, err := emews.StartFollower(srv.Addr(), s.dirFollower, emews.FollowerOptions{
			ShardIndex: i,
			ShardCount: n,
			WAL:        wal.Options{Name: fmt.Sprintf("wal.loadgen.shard%d.replica", i), Logf: h.cfg.Logf},
		})
		if err != nil {
			proxy.Close()
			srv.Close()
			l.Close()
			h.closeShards()
			return fmt.Errorf("loadgen: shard %d follower: %w", i, err)
		}
		reapCtx, reapStop := context.WithCancel(context.Background())
		db.StartReaper(reapCtx, 500*time.Millisecond)
		s.db, s.log, s.srv, s.proxy = db, l, srv, proxy
		s.follower, s.reapStop = follower, reapStop
		h.shards = append(h.shards, s)
	}
	return nil
}

// shardDir names shard i's primary log directory under the tasks root.
func shardDir(base string, i int) string {
	return fmt.Sprintf("%s/shard-%02d", base, i)
}

// failover kills shard i's primary mid-run and promotes its follower. The
// death model matches the crash fault: the WAL handle drops first — so
// nothing that happens during teardown reaches the durable log — then the
// listener. The promotion sequence is the one replica.go documents: stop
// the tail, catch up from the dead primary's log directory (zero
// acknowledged-record loss on a shared filesystem), promote (the
// epoch-bumping requeue that fences straggler claims), serve the promoted
// DB on a fresh port, and repoint the shard's proxy at it. Clients notice
// only killed connections and redial through the proxy's stable address.
func (h *harness) failover(i int) error {
	if i < 0 || i >= len(h.shards) {
		return fmt.Errorf("loadgen: shard-failover: shard %d out of range for %d shards", i, len(h.shards))
	}
	s := h.shards[i]
	h.mu.Lock()
	if s.failedOver {
		h.mu.Unlock()
		return fmt.Errorf("loadgen: shard-failover: shard %d already failed over", i)
	}
	log, srv, fol, reapStop := s.log, s.srv, s.follower, s.reapStop
	h.mu.Unlock()

	reapStop()
	log.Close()
	srv.Close()
	fol.Stop()
	if err := fol.CatchUp(s.dirPrimary); err != nil {
		return err
	}
	db, nlog, err := fol.Promote()
	if err != nil {
		return err
	}
	db.SetLeaseTimeout(5 * time.Second)
	nsrv, err := emews.Serve(db, "127.0.0.1:0",
		emews.WithShardIdentity(i, h.cfg.Shards), emews.WithReplicationSource(nlog))
	if err != nil {
		return fmt.Errorf("loadgen: serve promoted shard %d: %w", i, err)
	}
	reapCtx, stop := context.WithCancel(context.Background())
	db.StartReaper(reapCtx, 500*time.Millisecond)

	h.mu.Lock()
	s.db, s.log, s.srv, s.reapStop = db, nlog, nsrv, stop
	s.follower = nil
	s.dir = s.dirFollower
	s.failedOver = true
	h.mu.Unlock()

	s.proxy.SetBackend(nsrv.Addr())
	s.proxy.KillActive()

	h.faultMu.Lock()
	h.failovers++
	h.faultMu.Unlock()
	h.cfg.Logf("loadgen: shard %d failed over to its promoted follower", i)
	return nil
}

// closeShards tears the group down in dependency order — reapers, then
// servers, then unpromoted followers, then logs — returning the first
// log-close error (the same fail-stop close contract the single stack
// has). Safe on a partially booted group.
func (h *harness) closeShards() error {
	var firstErr error
	for _, s := range h.shards {
		if s.reapStop != nil {
			s.reapStop()
		}
		if s.srv != nil {
			s.srv.Close()
		}
		if s.follower != nil {
			s.follower.Close()
		}
		if s.log != nil {
			if err := s.log.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// auditDirs returns each shard's current authoritative log directory —
// the promoted follower's for a failed-over shard — indexed by shard, as
// emews.AuditShards expects.
func (h *harness) auditDirs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.dir
	}
	return out
}

// proxies returns every chaos proxy in the topology — one for the single
// stack, one per shard for a group — so the network faults (kill, refuse,
// latency) hit the whole fabric.
func (h *harness) proxies() []*chaos.Proxy {
	if !h.sharded() {
		return []*chaos.Proxy{h.proxy}
	}
	out := make([]*chaos.Proxy, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.proxy
	}
	return out
}

// proxyAddrs returns the stable client-facing address of every shard,
// indexed by shard — the address list a ShardedClient routes over.
func (h *harness) proxyAddrs() []string {
	addrs := make([]string, len(h.shards))
	for i, s := range h.shards {
		addrs[i] = s.proxy.Addr()
	}
	return addrs
}

// proxyStats sums fault counters across the topology's proxies.
func (h *harness) proxyStats() chaos.ProxyStats {
	var sum chaos.ProxyStats
	for _, p := range h.proxies() {
		st := p.Stats()
		sum.Accepted += st.Accepted
		sum.Refused += st.Refused
		sum.Killed += st.Killed
	}
	return sum
}

// dumpAll merges every member's task dump, sorted by ID. Strided ID
// allocation keeps the ID space disjoint across shards, so the merge is
// the same per-task ledger a single stack would hold.
func (h *harness) dumpAll() []emews.Task {
	if !h.sharded() {
		return h.currentDB().Dump()
	}
	h.mu.Lock()
	dbs := make([]*emews.DB, len(h.shards))
	for i, s := range h.shards {
		dbs[i] = s.db
	}
	h.mu.Unlock()
	var out []emews.Task
	for _, db := range dbs {
		out = append(out, db.Dump()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// statsAll sums occupancy counters across the topology.
func (h *harness) statsAll() emews.Stats {
	if !h.sharded() {
		return h.currentDB().Stats()
	}
	h.mu.Lock()
	dbs := make([]*emews.DB, len(h.shards))
	for i, s := range h.shards {
		dbs[i] = s.db
	}
	h.mu.Unlock()
	var sum emews.Stats
	for _, db := range dbs {
		st := db.Stats()
		sum.Queued += st.Queued
		sum.Running += st.Running
		sum.Complete += st.Complete
		sum.Failed += st.Failed
		sum.Canceled += st.Canceled
		sum.Submitted += st.Submitted
	}
	return sum
}
