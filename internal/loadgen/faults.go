package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FaultKind names one chaos action the harness can take mid-run.
type FaultKind string

const (
	// FaultKill severs every active worker connection through the proxy.
	// Unresolved claims are failed by the server's connection-scoped
	// cleanup and requeued.
	FaultKill FaultKind = "kill"
	// FaultRefuse makes the proxy refuse new connections for a window
	// (Value), simulating a partition between the worker pool and the
	// task server.
	FaultRefuse FaultKind = "refuse"
	// FaultLatency injects per-chunk latency (Value) on every proxied
	// connection for a window (Dur), simulating a congested link.
	FaultLatency FaultKind = "latency"
	// FaultPoolCrash hard-kills the worker pool mid-task (claims are
	// abandoned, not resolved) and restarts it after Value.
	FaultPoolCrash FaultKind = "pool-crash"
	// FaultCrash SIGKILLs the simulated daemon: the task server, metadata
	// server, and WAL handles are dropped without close/compact, then
	// everything is rebooted from the data directory on the same ports.
	FaultCrash FaultKind = "crash"
	// FaultTornCrash is FaultCrash plus a torn tail: the last bytes of
	// the task WAL's active segment are chopped before reboot, exercising
	// the truncate-and-warn recovery path. A torn tail may lose a finish
	// record, so a task can legally be re-executed after this fault (the
	// per-(task,epoch) fencing invariants still hold).
	FaultTornCrash FaultKind = "torn-crash"
	// FaultShardFailover kills shard Shard's primary mid-run — WAL handle
	// dropped first, then the listener, the same death model as FaultCrash
	// — and promotes its warm follower: catch-up from the dead primary's
	// log directory, epoch-bumping requeue of orphaned claims, a fresh
	// server, and a proxy repoint. Requires a sharded run (Config.Shards
	// >= 2); each shard has one standby, so at most one failover per
	// shard per run.
	FaultShardFailover FaultKind = "shard-failover"
)

// FaultEvent is one scheduled chaos action. At is the offset from run
// start. Value and Dur are kind-specific (see the kind docs); zero means
// the kind's default.
type FaultEvent struct {
	At    time.Duration `json:"at"`
	Kind  FaultKind     `json:"kind"`
	Value time.Duration `json:"value,omitempty"`
	Dur   time.Duration `json:"dur,omitempty"`
	Shard int           `json:"shard,omitempty"` // target of a shard-scoped fault
}

func (f FaultEvent) String() string {
	switch f.Kind {
	case FaultRefuse, FaultPoolCrash:
		return fmt.Sprintf("%v:%s:%v", f.At, f.Kind, f.Value)
	case FaultLatency:
		return fmt.Sprintf("%v:%s:%v:%v", f.At, f.Kind, f.Value, f.Dur)
	case FaultShardFailover:
		return fmt.Sprintf("%v:%s:%d", f.At, f.Kind, f.Shard)
	default:
		return fmt.Sprintf("%v:%s", f.At, f.Kind)
	}
}

// Fault window defaults, applied by ParseFaults/DefaultFaults when the
// DSL omits them.
const (
	defaultRefuseWindow  = 500 * time.Millisecond
	defaultLatency       = 20 * time.Millisecond
	defaultLatencyWindow = time.Second
	defaultPoolRestart   = 200 * time.Millisecond
)

// ParseFaults parses the fault-schedule DSL: semicolon-separated
// AT:KIND[:ARG[:ARG2]] entries, where AT and the args are Go durations.
//
//	5s:kill                  kill active connections at t=5s
//	8s:refuse:1s             refuse new connections from t=8s for 1s
//	12s:latency:50ms:2s      inject 50ms per-chunk latency from t=12s for 2s
//	15s:pool-crash:500ms     crash the worker pool at t=15s, restart after 500ms
//	20s:crash                daemon crash + recovery at t=20s
//	25s:torn-crash           daemon crash with a torn WAL tail at t=25s
//	30s:shard-failover:1     kill shard 1's primary at t=30s, promote its follower
//
// The keywords "default", "shard-failover", and "none" expand to
// DefaultFaults(d)/ShardFailoverFaults(d)/no faults when given to
// ParseFaultsFor; events are returned sorted by At.
func ParseFaults(s string) ([]FaultEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var events []FaultEvent
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("loadgen: fault %q: want AT:KIND[:ARG[:ARG2]]", entry)
		}
		at, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad offset: %v", entry, err)
		}
		ev := FaultEvent{At: at, Kind: FaultKind(parts[1])}
		arg := func(i int, def time.Duration) (time.Duration, error) {
			if len(parts) <= i {
				return def, nil
			}
			return time.ParseDuration(parts[i])
		}
		switch ev.Kind {
		case FaultKill, FaultCrash, FaultTornCrash:
			if len(parts) > 2 {
				return nil, fmt.Errorf("loadgen: fault %q: %s takes no arguments", entry, ev.Kind)
			}
		case FaultRefuse:
			if ev.Value, err = arg(2, defaultRefuseWindow); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad window: %v", entry, err)
			}
		case FaultLatency:
			if ev.Value, err = arg(2, defaultLatency); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad latency: %v", entry, err)
			}
			if ev.Dur, err = arg(3, defaultLatencyWindow); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad window: %v", entry, err)
			}
		case FaultPoolCrash:
			if ev.Value, err = arg(2, defaultPoolRestart); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad restart delay: %v", entry, err)
			}
		case FaultShardFailover:
			if len(parts) > 3 {
				return nil, fmt.Errorf("loadgen: fault %q: want AT:shard-failover[:SHARD]", entry)
			}
			if len(parts) == 3 {
				n, cerr := strconv.Atoi(parts[2])
				if cerr != nil || n < 0 {
					return nil, fmt.Errorf("loadgen: fault %q: bad shard index %q", entry, parts[2])
				}
				ev.Shard = n
			}
		default:
			return nil, fmt.Errorf("loadgen: fault %q: unknown kind %q", entry, parts[1])
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// fracOf places a fault at fraction f of a run of length d; winOf sizes a
// fault window the same way, clamped to the DSL defaults' order of
// magnitude.
func fracOf(d time.Duration, f float64) time.Duration { return time.Duration(f * float64(d)) }

func winOf(d time.Duration, f float64, min, max time.Duration) time.Duration {
	w := fracOf(d, f)
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	return w
}

// DefaultFaults builds the full fault schedule for a run of length d:
// every single-stack fault kind, spread across the middle of the run so
// the tail leaves room to drain. Windows scale with d but are clamped to
// the DSL defaults' order of magnitude.
func DefaultFaults(d time.Duration) []FaultEvent {
	return []FaultEvent{
		{At: fracOf(d, 0.15), Kind: FaultKill},
		{At: fracOf(d, 0.25), Kind: FaultRefuse, Value: winOf(d, 0.04, 100*time.Millisecond, time.Second)},
		{At: fracOf(d, 0.40), Kind: FaultLatency, Value: defaultLatency, Dur: winOf(d, 0.08, 200*time.Millisecond, 2*time.Second)},
		{At: fracOf(d, 0.55), Kind: FaultPoolCrash, Value: defaultPoolRestart},
		{At: fracOf(d, 0.68), Kind: FaultCrash},
		{At: fracOf(d, 0.82), Kind: FaultTornCrash},
		{At: fracOf(d, 0.90), Kind: FaultKill},
	}
}

// ShardFailoverFaults builds the sharded-run chaos schedule for a run of
// length d: the network and pool faults from DefaultFaults interleaved
// with two primary kills — shard 0 mid-ramp, shard 1 late, each promoting
// its follower. The crash faults stay out: they exercise the single-stack
// reboot-in-place recovery path, which a shard group replaces with
// failover.
func ShardFailoverFaults(d time.Duration) []FaultEvent {
	return []FaultEvent{
		{At: fracOf(d, 0.12), Kind: FaultKill},
		{At: fracOf(d, 0.25), Kind: FaultShardFailover, Shard: 0},
		{At: fracOf(d, 0.38), Kind: FaultLatency, Value: defaultLatency, Dur: winOf(d, 0.08, 200*time.Millisecond, 2*time.Second)},
		{At: fracOf(d, 0.52), Kind: FaultRefuse, Value: winOf(d, 0.04, 100*time.Millisecond, time.Second)},
		{At: fracOf(d, 0.62), Kind: FaultPoolCrash, Value: defaultPoolRestart},
		{At: fracOf(d, 0.75), Kind: FaultShardFailover, Shard: 1},
		{At: fracOf(d, 0.88), Kind: FaultKill},
	}
}

// TenantFaults builds the multi-tenant chaos schedule for a run of
// length d: the network and pool faults from DefaultFaults, without the
// daemon crash faults. A crash reboot would sever the run-long streaming
// watch subscriptions whose delivery accounting the tenant invariants
// assert; the noisy-neighbor pressure itself comes from the plan (the
// noisy tenant's ingest rate), not from the schedule.
func TenantFaults(d time.Duration) []FaultEvent {
	return []FaultEvent{
		{At: fracOf(d, 0.15), Kind: FaultKill},
		{At: fracOf(d, 0.30), Kind: FaultRefuse, Value: winOf(d, 0.04, 100*time.Millisecond, time.Second)},
		{At: fracOf(d, 0.50), Kind: FaultLatency, Value: defaultLatency, Dur: winOf(d, 0.08, 200*time.Millisecond, 2*time.Second)},
		{At: fracOf(d, 0.68), Kind: FaultPoolCrash, Value: defaultPoolRestart},
		{At: fracOf(d, 0.88), Kind: FaultKill},
	}
}

// ParseFaultsFor resolves a -faults flag value: "default" expands to
// DefaultFaults(d), "shard-failover" to ShardFailoverFaults(d), "tenant"
// to TenantFaults(d), "none"/"" to an empty schedule, anything else is
// parsed as the DSL.
func ParseFaultsFor(s string, d time.Duration) ([]FaultEvent, error) {
	switch strings.TrimSpace(s) {
	case "default":
		return DefaultFaults(d), nil
	case "shard-failover":
		return ShardFailoverFaults(d), nil
	case "tenant":
		return TenantFaults(d), nil
	}
	return ParseFaults(s)
}

// validateFaults rejects schedule/topology mismatches up front: the crash
// faults reboot the single stack in place and have no meaning for a shard
// group (and would sever the run-long watch subscriptions a multi-tenant
// run audits), shard-failover needs a group, a real target, and an
// unspent standby (each shard has exactly one).
func validateFaults(faults []FaultEvent, shards, tenants int) error {
	failedOver := map[int]bool{}
	for _, f := range faults {
		switch f.Kind {
		case FaultCrash, FaultTornCrash:
			if shards > 1 {
				return fmt.Errorf("loadgen: fault %s targets the single-stack recovery path; not supported with %d shards", f, shards)
			}
			if tenants > 0 {
				return fmt.Errorf("loadgen: fault %s reboots the metadata server; not supported with %d tenants (streaming watches must stay connected)", f, tenants)
			}
		case FaultShardFailover:
			if shards <= 1 {
				return fmt.Errorf("loadgen: fault %s requires a sharded run (Shards >= 2)", f)
			}
			if f.Shard >= shards {
				return fmt.Errorf("loadgen: fault %s targets shard %d of a %d-shard group", f, f.Shard, shards)
			}
			if failedOver[f.Shard] {
				return fmt.Errorf("loadgen: fault %s: shard %d already failed over (one standby per shard)", f, f.Shard)
			}
			failedOver[f.Shard] = true
		}
	}
	return nil
}
