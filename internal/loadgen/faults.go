package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FaultKind names one chaos action the harness can take mid-run.
type FaultKind string

const (
	// FaultKill severs every active worker connection through the proxy.
	// Unresolved claims are failed by the server's connection-scoped
	// cleanup and requeued.
	FaultKill FaultKind = "kill"
	// FaultRefuse makes the proxy refuse new connections for a window
	// (Value), simulating a partition between the worker pool and the
	// task server.
	FaultRefuse FaultKind = "refuse"
	// FaultLatency injects per-chunk latency (Value) on every proxied
	// connection for a window (Dur), simulating a congested link.
	FaultLatency FaultKind = "latency"
	// FaultPoolCrash hard-kills the worker pool mid-task (claims are
	// abandoned, not resolved) and restarts it after Value.
	FaultPoolCrash FaultKind = "pool-crash"
	// FaultCrash SIGKILLs the simulated daemon: the task server, metadata
	// server, and WAL handles are dropped without close/compact, then
	// everything is rebooted from the data directory on the same ports.
	FaultCrash FaultKind = "crash"
	// FaultTornCrash is FaultCrash plus a torn tail: the last bytes of
	// the task WAL's active segment are chopped before reboot, exercising
	// the truncate-and-warn recovery path. A torn tail may lose a finish
	// record, so a task can legally be re-executed after this fault (the
	// per-(task,epoch) fencing invariants still hold).
	FaultTornCrash FaultKind = "torn-crash"
)

// FaultEvent is one scheduled chaos action. At is the offset from run
// start. Value and Dur are kind-specific (see the kind docs); zero means
// the kind's default.
type FaultEvent struct {
	At    time.Duration `json:"at"`
	Kind  FaultKind     `json:"kind"`
	Value time.Duration `json:"value,omitempty"`
	Dur   time.Duration `json:"dur,omitempty"`
}

func (f FaultEvent) String() string {
	switch f.Kind {
	case FaultRefuse, FaultPoolCrash:
		return fmt.Sprintf("%v:%s:%v", f.At, f.Kind, f.Value)
	case FaultLatency:
		return fmt.Sprintf("%v:%s:%v:%v", f.At, f.Kind, f.Value, f.Dur)
	default:
		return fmt.Sprintf("%v:%s", f.At, f.Kind)
	}
}

// Fault window defaults, applied by ParseFaults/DefaultFaults when the
// DSL omits them.
const (
	defaultRefuseWindow  = 500 * time.Millisecond
	defaultLatency       = 20 * time.Millisecond
	defaultLatencyWindow = time.Second
	defaultPoolRestart   = 200 * time.Millisecond
)

// ParseFaults parses the fault-schedule DSL: semicolon-separated
// AT:KIND[:ARG[:ARG2]] entries, where AT and the args are Go durations.
//
//	5s:kill                  kill active connections at t=5s
//	8s:refuse:1s             refuse new connections from t=8s for 1s
//	12s:latency:50ms:2s      inject 50ms per-chunk latency from t=12s for 2s
//	15s:pool-crash:500ms     crash the worker pool at t=15s, restart after 500ms
//	20s:crash                daemon crash + recovery at t=20s
//	25s:torn-crash           daemon crash with a torn WAL tail at t=25s
//
// The keywords "default" and "none" expand to DefaultFaults(d)/no faults
// when given to ParseFaultsFor; events are returned sorted by At.
func ParseFaults(s string) ([]FaultEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var events []FaultEvent
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("loadgen: fault %q: want AT:KIND[:ARG[:ARG2]]", entry)
		}
		at, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad offset: %v", entry, err)
		}
		ev := FaultEvent{At: at, Kind: FaultKind(parts[1])}
		arg := func(i int, def time.Duration) (time.Duration, error) {
			if len(parts) <= i {
				return def, nil
			}
			return time.ParseDuration(parts[i])
		}
		switch ev.Kind {
		case FaultKill, FaultCrash, FaultTornCrash:
			if len(parts) > 2 {
				return nil, fmt.Errorf("loadgen: fault %q: %s takes no arguments", entry, ev.Kind)
			}
		case FaultRefuse:
			if ev.Value, err = arg(2, defaultRefuseWindow); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad window: %v", entry, err)
			}
		case FaultLatency:
			if ev.Value, err = arg(2, defaultLatency); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad latency: %v", entry, err)
			}
			if ev.Dur, err = arg(3, defaultLatencyWindow); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad window: %v", entry, err)
			}
		case FaultPoolCrash:
			if ev.Value, err = arg(2, defaultPoolRestart); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad restart delay: %v", entry, err)
			}
		default:
			return nil, fmt.Errorf("loadgen: fault %q: unknown kind %q", entry, parts[1])
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// DefaultFaults builds the full fault schedule for a run of length d:
// every fault kind, spread across the middle of the run so the tail
// leaves room to drain. Windows scale with d but are clamped to the
// DSL defaults' order of magnitude.
func DefaultFaults(d time.Duration) []FaultEvent {
	frac := func(f float64) time.Duration { return time.Duration(f * float64(d)) }
	win := func(f float64, min, max time.Duration) time.Duration {
		w := frac(f)
		if w < min {
			w = min
		}
		if w > max {
			w = max
		}
		return w
	}
	return []FaultEvent{
		{At: frac(0.15), Kind: FaultKill},
		{At: frac(0.25), Kind: FaultRefuse, Value: win(0.04, 100*time.Millisecond, time.Second)},
		{At: frac(0.40), Kind: FaultLatency, Value: defaultLatency, Dur: win(0.08, 200*time.Millisecond, 2*time.Second)},
		{At: frac(0.55), Kind: FaultPoolCrash, Value: defaultPoolRestart},
		{At: frac(0.68), Kind: FaultCrash},
		{At: frac(0.82), Kind: FaultTornCrash},
		{At: frac(0.90), Kind: FaultKill},
	}
}

// ParseFaultsFor resolves a -faults flag value: "default" expands to
// DefaultFaults(d), "none"/"" to an empty schedule, anything else is
// parsed as the DSL.
func ParseFaultsFor(s string, d time.Duration) ([]FaultEvent, error) {
	if strings.TrimSpace(s) == "default" {
		return DefaultFaults(d), nil
	}
	return ParseFaults(s)
}
