// Package loadgen is a seeded, deterministic workload driver and chaos
// harness for the OSPREY service stack. It boots a real EMEWS task server
// and AERO metadata server in-process, drives configurable open- or
// closed-loop traffic against them over TCP/HTTP (task submit/pop/finish
// mixes, data-version ingests, metrics scrapes), interleaves a
// declarative fault schedule (connection kills, refused connections,
// injected latency, worker crash-restart, daemon crash + WAL recovery),
// and then proves end-of-run invariants from the task ledger and a
// strict WAL replay: submitted = completed + failed + canceled, zero
// lost tasks, zero double finishes, monotone attempt epochs.
//
// Determinism contract: the workload plan — the full sequence of submit
// and ingest events, including payloads, priorities, simulated work
// durations, and injected-failure directives — is a pure function of
// Config.Seed and the shape parameters (rate, duration, mix). Two runs
// with the same seed produce byte-identical plans and plan digests; only
// execution timing (latencies, interleavings, fault outcomes) differs.
// cmd/osprey-loadgen exposes the harness as a CLI and the CI soak leg
// runs it twice per pipeline to hold the contract.
package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"osprey/internal/rng"
)

// Plan event kinds.
const (
	EventSubmit = "submit" // EMEWS task submission over the wire protocol
	EventIngest = "ingest" // AERO data-version ingest over HTTP
)

// failAlways marks a task that fails on every attempt: it must terminate
// as StatusFailed once its retry budget is consumed.
const failAlways = 1 << 30

// PlanEvent is one deterministic workload event. AtMS is the pacing
// offset from run start; Index numbers events per kind and is embedded in
// payloads/checksums so the end-of-run audit can reconcile exactly which
// plan events reached the stores.
type PlanEvent struct {
	Index       int    `json:"i"`
	AtMS        int64  `json:"at_ms"`
	Kind        string `json:"kind"`
	TaskType    string `json:"task_type,omitempty"`
	Priority    int    `json:"priority,omitempty"`
	Payload     string `json:"payload,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	Stream      string `json:"stream,omitempty"`
	Checksum    string `json:"checksum,omitempty"`
	Tenant      string `json:"tenant,omitempty"` // owning tenant; "" in single-tenant plans
}

// payloadSpec is the directive encoded into a submit event's payload: the
// worker evaluating the task simulates WorkUS of model time and fails
// attempts whose epoch is <= FailN (or every attempt, for failAlways).
// Failure behavior is decided at plan time, never at execution time, so
// the intended terminal outcome of every task is known up front.
type payloadSpec struct {
	Index  int   `json:"i"`
	WorkUS int64 `json:"work_us"`
	FailN  int   `json:"fail_n,omitempty"`
}

// BuildPlan derives the full workload plan from the configuration. It is
// a pure function of the seed and the shape parameters.
func BuildPlan(cfg Config) []PlanEvent {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	var events []PlanEvent

	// Task submissions: Rate × Duration events, evenly paced with ±30%
	// jitter inside each slot.
	sub := root.Split("loadgen.submit")
	nSub := int(cfg.Rate * cfg.Duration.Seconds())
	if nSub < 1 {
		nSub = 1
	}
	period := float64(cfg.Duration.Milliseconds()) / float64(nSub)
	meanUS := float64(cfg.WorkMean.Microseconds())
	for i := 0; i < nSub; i++ {
		at := int64((float64(i) + 0.5 + 0.3*(2*sub.Float64()-1)) * period)
		if at < 0 {
			at = 0
		}
		work := int64(sub.Exponential(1 / meanUS))
		if max := int64(50_000); work > max {
			work = max // cap simulated work at 50ms so drains stay bounded
		}
		spec := payloadSpec{Index: i, WorkUS: work}
		maxAttempts := 1000 // chaos-induced retries must never exhaust an intended success
		switch u := sub.Float64(); {
		case u < cfg.FailFrac/2:
			spec.FailN = failAlways // intended terminal failure
			maxAttempts = 2
		case u < cfg.FailFrac:
			spec.FailN = 1 + sub.Intn(2) // flaky: fails first 1-2 attempts, then succeeds
		}
		payload, err := json.Marshal(spec)
		if err != nil {
			panic("loadgen: marshal payloadSpec: " + err.Error())
		}
		events = append(events, PlanEvent{
			Index:       i,
			AtMS:        at,
			Kind:        EventSubmit,
			TaskType:    cfg.TaskTypes[sub.Intn(len(cfg.TaskTypes))],
			Priority:    sub.Intn(3),
			Payload:     string(payload),
			MaxAttempts: maxAttempts,
		})
	}

	// AERO data-version ingests. Single-tenant plans round-robin one
	// event sequence over the shared streams — byte-identical to every
	// pre-tenancy plan. Multi-tenant plans derive one independent ingest
	// sequence per tenant from its own labeled rng stream, each over the
	// tenant's private streams; the noisy tenant runs at NoisyFactor×
	// the base rate so the quota layer has something to push back on.
	if cfg.Tenants > 0 {
		for t := 0; t < cfg.Tenants; t++ {
			ing := root.Split(fmt.Sprintf("loadgen.ingest.t%02d", t))
			rate := cfg.IngestRate
			if t == cfg.NoisyTenant {
				rate *= cfg.NoisyFactor
			}
			nIng := int(rate * cfg.Duration.Seconds())
			if rate > 0 && nIng < 1 {
				nIng = 1
			}
			iperiod := float64(cfg.Duration.Milliseconds()) / float64(max(nIng, 1))
			for i := 0; i < nIng; i++ {
				at := int64((float64(i) + 0.5 + 0.3*(2*ing.Float64()-1)) * iperiod)
				if at < 0 {
					at = 0
				}
				events = append(events, PlanEvent{
					Index:    i,
					AtMS:     at,
					Kind:     EventIngest,
					Tenant:   TenantName(t),
					Stream:   TenantStreamName(t, i%cfg.IngestStreams),
					Checksum: fmt.Sprintf("plan-t%02d-%06d", t, i),
				})
			}
		}
	} else {
		ing := root.Split("loadgen.ingest")
		nIng := int(cfg.IngestRate * cfg.Duration.Seconds())
		if cfg.IngestRate > 0 && nIng < 1 {
			nIng = 1
		}
		if nIng > 0 {
			iperiod := float64(cfg.Duration.Milliseconds()) / float64(nIng)
			for i := 0; i < nIng; i++ {
				at := int64((float64(i) + 0.5 + 0.3*(2*ing.Float64()-1)) * iperiod)
				if at < 0 {
					at = 0
				}
				events = append(events, PlanEvent{
					Index:    i,
					AtMS:     at,
					Kind:     EventIngest,
					Stream:   StreamName(i % cfg.IngestStreams),
					Checksum: fmt.Sprintf("plan-%06d", i),
				})
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.AtMS != b.AtMS {
			return a.AtMS < b.AtMS
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Index < b.Index
	})
	return events
}

// StreamName names ingest stream n ("stream-00", ...).
func StreamName(n int) string { return fmt.Sprintf("stream-%02d", n) }

// TenantName names tenant t ("tenant-00", ...); it doubles as the
// bearer-token identity the harness issues for that tenant.
func TenantName(t int) string { return fmt.Sprintf("tenant-%02d", t) }

// TenantStreamName names tenant t's private ingest stream n.
func TenantStreamName(t, n int) string { return fmt.Sprintf("t%02d-stream-%02d", t, n) }

// PlanDigest is the SHA-256 of the canonical JSON encoding of the plan —
// the value two same-seed runs must agree on.
func PlanDigest(events []PlanEvent) string {
	b, err := json.Marshal(events)
	if err != nil {
		panic("loadgen: marshal plan: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// expectedOutcome reports the intended terminal state of a submit event:
// complete (ok=true) or failed (ok=false).
func expectedOutcome(spec payloadSpec) (ok bool) { return spec.FailN < failAlways }

// submitResult is the result payload an intended-success worker returns.
func submitResult(index int) string { return fmt.Sprintf("ok:%d", index) }

// Mode durations and windows below this are meaningless; used by config
// validation.
const minDuration = 100 * time.Millisecond
