package loadgen

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// Two plans built from the same config must be byte-identical; changing
// the seed must change the digest.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Duration: 5 * time.Second, Rate: 100}
	a, b := BuildPlan(cfg), BuildPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-config plans differ")
	}
	if PlanDigest(a) != PlanDigest(b) {
		t.Fatal("same-config digests differ")
	}
	cfg.Seed = 43
	if PlanDigest(BuildPlan(cfg)) == PlanDigest(a) {
		t.Fatal("different seeds produced the same digest")
	}
	// Pacing offsets must be sorted and inside the workload window.
	var last int64
	for _, ev := range a {
		if ev.AtMS < last {
			t.Fatalf("plan not sorted: %d after %d", ev.AtMS, last)
		}
		last = ev.AtMS
	}
	if n := len(a); n < 500 {
		t.Fatalf("plan has %d events, want ~500 submits + ingests", n)
	}
}

func TestParseFaults(t *testing.T) {
	evs, err := ParseFaults("5s:kill; 8s:refuse:1s;12s:latency:50ms:2s; 15s:pool-crash:500ms;20s:crash;25s:torn-crash;30s:shard-failover:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{At: 5 * time.Second, Kind: FaultKill},
		{At: 8 * time.Second, Kind: FaultRefuse, Value: time.Second},
		{At: 12 * time.Second, Kind: FaultLatency, Value: 50 * time.Millisecond, Dur: 2 * time.Second},
		{At: 15 * time.Second, Kind: FaultPoolCrash, Value: 500 * time.Millisecond},
		{At: 20 * time.Second, Kind: FaultCrash},
		{At: 25 * time.Second, Kind: FaultTornCrash},
		{At: 30 * time.Second, Kind: FaultShardFailover, Shard: 1},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("ParseFaults = %+v, want %+v", evs, want)
	}
	// An omitted shard index defaults to shard 0.
	if evs, err := ParseFaults("1s:shard-failover"); err != nil || evs[0].Shard != 0 {
		t.Fatalf("bare shard-failover: %+v %v", evs, err)
	}
	// Defaults fill in omitted windows.
	evs, err = ParseFaults("1s:refuse;2s:latency")
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Value != defaultRefuseWindow || evs[1].Value != defaultLatency || evs[1].Dur != defaultLatencyWindow {
		t.Fatalf("defaults not applied: %+v", evs)
	}
	for _, bad := range []string{"kill", "5s:explode", "x:kill", "5s:refuse:x", "5s:kill:1s",
		"5s:shard-failover:x", "5s:shard-failover:-1", "5s:shard-failover:1:2"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) did not fail", bad)
		}
	}
	if evs, _ := ParseFaults("none"); evs != nil {
		t.Fatal("none should parse to an empty schedule")
	}
	if evs, err := ParseFaultsFor("default", 10*time.Second); err != nil || len(evs) == 0 {
		t.Fatalf("default schedule: %v %v", evs, err)
	}
	if evs, err := ParseFaultsFor("shard-failover", 10*time.Second); err != nil || len(evs) == 0 {
		t.Fatalf("shard-failover schedule: %v %v", evs, err)
	}
}

// Fault schedules and topologies must agree before any stack is booted.
func TestValidateShardFaults(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		faults string
	}{
		{"crash-with-shards", 3, "1s:crash"},
		{"torn-crash-with-shards", 3, "1s:torn-crash"},
		{"failover-without-shards", 1, "1s:shard-failover"},
		{"failover-out-of-range", 2, "1s:shard-failover:2"},
		{"failover-same-shard-twice", 3, "1s:shard-failover:0;2s:shard-failover:0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults, err := ParseFaults(tc.faults)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(Config{Shards: tc.shards, Faults: faults}); err == nil {
				t.Fatalf("Run accepted %q with %d shards", tc.faults, tc.shards)
			}
		})
	}
	if err := validateFaults(ShardFailoverFaults(time.Second), 3, 0); err != nil {
		t.Fatalf("named schedule rejected for 3 shards: %v", err)
	}
	if err := validateFaults(DefaultFaults(time.Second), 1, 0); err != nil {
		t.Fatalf("default schedule rejected for the single stack: %v", err)
	}
	if err := validateFaults(TenantFaults(time.Second), 1, 3); err != nil {
		t.Fatalf("tenant schedule rejected for a tenant run: %v", err)
	}
	if err := validateFaults(DefaultFaults(time.Second), 1, 3); err == nil {
		t.Fatal("crash schedule accepted for a tenant run")
	}
}

// The short soak: two same-seed runs through the full fault taxonomy.
// Every invariant must hold in both runs and the workload digests (and
// event sequences) must be identical — the determinism contract the soak
// CI leg enforces at larger scale.
func TestShortSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness in -short mode")
	}
	d := 1200 * time.Millisecond
	cfg := Config{
		Seed:         7,
		Duration:     d,
		Rate:         120,
		Workers:      6,
		IngestRate:   15,
		ScrapeEvery:  150 * time.Millisecond,
		Faults:       DefaultFaults(d),
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	}
	var reports [2]*Report
	for i := range reports {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !r.Pass {
			t.Fatalf("run %d failed invariants: %v", i, r.FailedInvariants())
		}
		if r.Totals.Crashes != 2 || r.Totals.TornCrashes != 1 {
			t.Fatalf("run %d: crashes=%d torn=%d, want 2/1 from the default schedule",
				i, r.Totals.Crashes, r.Totals.TornCrashes)
		}
		if r.Totals.Complete == 0 || r.Totals.Failed == 0 {
			t.Fatalf("run %d: degenerate mix complete=%d failed=%d",
				i, r.Totals.Complete, r.Totals.Failed)
		}
		reports[i] = r
	}
	if reports[0].Workload.Digest != reports[1].Workload.Digest {
		t.Fatalf("same-seed runs produced different workload digests: %s != %s",
			reports[0].Workload.Digest, reports[1].Workload.Digest)
	}
	a, _ := json.Marshal(reports[0].Workload.Events)
	b, _ := json.Marshal(reports[1].Workload.Events)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different event sequences")
	}
	// The report must round-trip as JSON (it is the CI artifact).
	var buf bytes.Buffer
	if err := reports[0].WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload.Digest != reports[0].Workload.Digest || !back.Pass {
		t.Fatal("report did not survive a JSON round trip")
	}
}

// The sharded soak: two same-seed runs over a 3-shard group through the
// shard-failover schedule, which kills two shard primaries mid-run and
// promotes their followers. Every invariant must hold in both runs —
// including the cross-shard audit — and the workload digests must match:
// failover must not cost determinism, coverage, or fencing.
func TestShardedSoakFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness in -short mode")
	}
	d := 1500 * time.Millisecond
	cfg := Config{
		Seed:         11,
		Duration:     d,
		Rate:         120,
		Workers:      6,
		Shards:       3,
		IngestRate:   10,
		ScrapeEvery:  200 * time.Millisecond,
		Faults:       ShardFailoverFaults(d),
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	}
	var reports [2]*Report
	for i := range reports {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !r.Pass {
			t.Fatalf("run %d failed invariants: %v", i, r.FailedInvariants())
		}
		if r.Shards != 3 || r.Failovers != 2 {
			t.Fatalf("run %d: shards=%d failovers=%d, want 3/2 from the schedule", i, r.Shards, r.Failovers)
		}
		if r.ShardsAudit == nil || !r.ShardsAudit.Ok() {
			t.Fatalf("run %d: shard audit missing or dirty: %+v", i, r.ShardsAudit)
		}
		for s, a := range r.ShardsAudit.Shards {
			if a.Submits == 0 {
				t.Fatalf("run %d: shard %d saw no submits — ring routing is not spreading the workload", i, s)
			}
		}
		if r.Totals.Complete == 0 || r.Totals.Failed == 0 {
			t.Fatalf("run %d: degenerate mix complete=%d failed=%d", i, r.Totals.Complete, r.Totals.Failed)
		}
		reports[i] = r
	}
	if reports[0].Workload.Digest != reports[1].Workload.Digest {
		t.Fatalf("same-seed sharded runs produced different workload digests: %s != %s",
			reports[0].Workload.Digest, reports[1].Workload.Digest)
	}
	a, _ := json.Marshal(reports[0].Workload.Events)
	b, _ := json.Marshal(reports[1].Workload.Events)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed sharded runs produced different event sequences")
	}
}

// Tenant plans: the legacy encoding must not grow a tenant key (older
// same-seed digests stay valid), and the multi-tenant plan must give the
// noisy neighbor its rate multiplier on private streams.
func TestTenantPlanShape(t *testing.T) {
	legacy := BuildPlan(Config{Seed: 5, Duration: time.Second, IngestRate: 10})
	b, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"tenant"`)) {
		t.Fatal("legacy plan encoding grew a tenant key")
	}

	cfg := Config{Seed: 5, Duration: time.Second, IngestRate: 10, Tenants: 3, NoisyTenant: 1}
	plan := BuildPlan(cfg)
	if PlanDigest(plan) != PlanDigest(BuildPlan(cfg)) {
		t.Fatal("same-seed tenant plans differ")
	}
	counts := map[string]int{}
	for _, ev := range plan {
		if ev.Kind != EventIngest {
			continue
		}
		counts[ev.Tenant]++
		if ev.Tenant == "" {
			t.Fatal("tenant-mode ingest event without a tenant")
		}
		wantPrefix := ev.Tenant[len("tenant-"):]
		if ev.Stream[:len("t"+wantPrefix)] != "t"+wantPrefix {
			t.Fatalf("stream %s not private to %s", ev.Stream, ev.Tenant)
		}
	}
	quiet, noisy := counts[TenantName(0)], counts[TenantName(1)]
	if quiet != 10 || noisy != 30 {
		t.Fatalf("ingest counts quiet=%d noisy=%d, want 10/30 (3× noisy factor)", quiet, noisy)
	}
}

// The multi-tenant soak: two same-seed runs with a noisy neighbor through
// the tenant fault schedule. Every invariant must hold — including zero
// cross-tenant reads, quota conformance with the noisy tenant actually
// throttled, per-tenant ledger balance, and exactly-once watch delivery —
// and the workload digests must match.
func TestTenantSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness in -short mode")
	}
	d := 1500 * time.Millisecond
	cfg := Config{
		Seed:         19,
		Duration:     d,
		Rate:         100,
		Workers:      6,
		IngestRate:   20, // per tenant; the noisy neighbor runs at 3× and must hit the quota
		Tenants:      3,
		ScrapeEvery:  200 * time.Millisecond,
		Faults:       TenantFaults(d),
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	}
	var reports [2]*Report
	for i := range reports {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !r.Pass {
			t.Fatalf("run %d failed invariants: %v", i, r.FailedInvariants())
		}
		if r.TenantCount != 3 || len(r.Tenants) != 3 {
			t.Fatalf("run %d: tenant accounting missing: %+v", i, r.Tenants)
		}
		noisy := r.Tenants[TenantName(0)]
		if noisy.Throttled == 0 {
			t.Fatalf("run %d: noisy tenant never throttled: %+v", i, noisy)
		}
		if r.ProbeChecks == 0 || r.ProbeViolations != 0 {
			t.Fatalf("run %d: probes=%d violations=%d", i, r.ProbeChecks, r.ProbeViolations)
		}
		for tn, tr := range r.Tenants {
			if tr.WatchDelivered+tr.WatchDropped != int64(tr.PlanIngests) || tr.WatchDuplicates != 0 {
				t.Fatalf("run %d: %s watch accounting: %+v", i, tn, tr)
			}
		}
		reports[i] = r
	}
	if reports[0].Workload.Digest != reports[1].Workload.Digest {
		t.Fatalf("same-seed tenant runs produced different workload digests: %s != %s",
			reports[0].Workload.Digest, reports[1].Workload.Digest)
	}
}

// A closed-loop run with no faults: the in-flight window caps the queue.
func TestClosedLoopNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness in -short mode")
	}
	cfg := Config{
		Seed:        3,
		Duration:    400 * time.Millisecond,
		Rate:        100,
		Workers:     4,
		Closed:      true,
		Window:      8,
		IngestRate:  -1, // disabled
		ScrapeEvery: 50 * time.Millisecond,
		Logf:        t.Logf,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("failed invariants: %v", r.FailedInvariants())
	}
	if r.Mode != "closed" {
		t.Fatalf("mode = %q", r.Mode)
	}
	if r.Totals.PlanIngests != 0 {
		t.Fatalf("ingests planned despite IngestRate<0: %d", r.Totals.PlanIngests)
	}
}
