package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osprey/internal/aero"
	"osprey/internal/chaos"
	"osprey/internal/emews"
	"osprey/internal/globus"
	"osprey/internal/obs"
	"osprey/internal/wal"
)

// Config shapes one harness run. The zero value is usable: every field
// has a default (see withDefaults). Seed plus the shape parameters fully
// determine the workload plan; see the package comment for the
// determinism contract.
type Config struct {
	Seed     uint64
	Duration time.Duration // workload window (drain time comes on top)
	Rate     float64       // task submissions per second (plan size)
	Workers  int           // worker goroutines popping through the chaos proxy
	Closed   bool          // closed-loop: pace submits by in-flight cap, not wall clock
	Window   int           // closed-loop in-flight cap; default 2×Workers

	// Shards selects the task-substrate topology: <=1 runs the single
	// stack, >=2 runs a shard group (consistent-hash routed submits,
	// strided IDs, one warm follower per shard) behind per-shard chaos
	// proxies. Crash faults need the single stack; shard-failover needs a
	// group — Run rejects mismatched schedules.
	Shards int

	// PinnedPorts makes crash reboots rebind the listen ports of the first
	// boot instead of taking fresh ephemeral ones. The harness re-resolves
	// addresses after every reboot, so pinning is never required; it only
	// recreates a fixed-address deployment, and on a busy host the rebind
	// can race another process claiming the freed port.
	PinnedPorts bool

	TaskTypes []string      // task-type mix; workers are assigned round-robin
	FailFrac  float64       // fraction of tasks that fail at least once (<0 disables)
	WorkMean  time.Duration // mean simulated model work per attempt
	PopBatch  int           // tasks leased per worker round trip; 1 = single-op path

	IngestRate    float64 // AERO data-version ingests per second, per tenant in tenant mode (<0 disables)
	IngestStreams int     // data items the ingests round-robin over (per tenant in tenant mode)

	// Tenants switches the AERO side to multi-tenant mode: the harness
	// issues one bearer token per tenant, wires token auth and per-tenant
	// token-bucket quotas into the metadata server, splits the ingest
	// plan into per-tenant private streams (tenant NoisyTenant ingests at
	// NoisyFactor× the base rate — the noisy neighbor), holds one
	// streaming watch subscription per tenant for the whole run, and
	// probes cross-tenant isolation while the workload is live. 0 runs
	// the legacy single-tenant mode: no auth, no quotas, plans
	// byte-identical to pre-tenancy runs.
	Tenants     int
	NoisyTenant int     // index of the noisy neighbor; default 0
	NoisyFactor float64 // noisy tenant's ingest-rate multiplier; default 3
	TenantQuota float64 // per-tenant ingest admission rate (req/s); default 2×IngestRate
	TenantBurst float64 // per-tenant token-bucket burst; default 12

	ScrapeEvery time.Duration // metrics-scrape interval

	DataDir string // WAL root; "" = private temp dir, removed when the run passes
	Faults  []FaultEvent

	DrainTimeout time.Duration // max wait for the queue to empty after the plan
	Logf         func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Duration < minDuration {
		c.Duration = minDuration
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if len(c.TaskTypes) == 0 {
		c.TaskTypes = []string{"sim", "calibrate"}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Workers < len(c.TaskTypes) {
		c.Workers = len(c.TaskTypes) // every type needs a worker or the drain hangs
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Workers
	}
	if c.FailFrac == 0 {
		c.FailFrac = 0.15
	}
	if c.WorkMean <= 0 {
		c.WorkMean = 2 * time.Millisecond
	}
	if c.PopBatch <= 0 {
		c.PopBatch = 4
	}
	if c.IngestRate == 0 {
		c.IngestRate = 5
	}
	if c.IngestStreams <= 0 {
		c.IngestStreams = 2
	}
	if c.Tenants < 0 {
		c.Tenants = 0
	}
	if c.Tenants > 0 {
		if c.NoisyTenant < 0 || c.NoisyTenant >= c.Tenants {
			c.NoisyTenant = 0
		}
		if c.NoisyFactor <= 0 {
			c.NoisyFactor = 3
		}
		if c.TenantQuota <= 0 && c.IngestRate > 0 {
			c.TenantQuota = 2 * c.IngestRate
		}
		if c.TenantBurst <= 0 {
			c.TenantBurst = 12
		}
	}
	if c.ScrapeEvery <= 0 {
		c.ScrapeEvery = 500 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// tracker is the harness-side ledger of what workers observed: popped
// attempt epochs and accepted resolutions, keyed so the end-of-run
// invariants can prove fencing worked from the client's point of view.
type tracker struct {
	mu       sync.Mutex
	pops     map[int64][]int64          // task ID -> popped epochs, observation order
	accepted map[int64]map[int64]string // task ID -> epoch -> "complete" | "fail"

	stale      int64 // resolutions rejected with ErrStaleClaim (expected under chaos)
	unresolved int64 // resolutions lost to transport errors (server cleanup requeues)
}

func newTracker() *tracker {
	return &tracker{pops: map[int64][]int64{}, accepted: map[int64]map[int64]string{}}
}

func (tr *tracker) popped(id, epoch int64) {
	tr.mu.Lock()
	tr.pops[id] = append(tr.pops[id], epoch)
	tr.mu.Unlock()
}

func (tr *tracker) resolved(id, epoch int64, kind string, err error) {
	switch {
	case err == nil:
		tr.mu.Lock()
		if tr.accepted[id] == nil {
			tr.accepted[id] = map[int64]string{}
		}
		tr.accepted[id][epoch] = kind
		tr.mu.Unlock()
	case errors.Is(err, emews.ErrStaleClaim):
		atomic.AddInt64(&tr.stale, 1)
	default:
		atomic.AddInt64(&tr.unresolved, 1)
	}
}

// harness owns the full service stack for one run. The mutable service
// handles (db, store, servers, logs) are swapped atomically under mu by
// crash/boot (single stack) or failover (shard group); everything else is
// fixed for the run.
type harness struct {
	cfg     Config
	plan    []PlanEvent
	start   time.Time
	tracker *tracker
	proxy   *chaos.Proxy  // single-stack chaos proxy; nil in sharded runs
	shards  []*shardState // shard group; nil in single-stack runs

	dirTasks, dirAero string

	mu       sync.Mutex
	db       *emews.DB
	store    *aero.Store
	logTasks *wal.Log
	logAero  *wal.Log
	taskSrv  *emews.Server
	httpSrv  *http.Server
	reapStop context.CancelFunc
	pool     *pool
	taskAddr string // re-resolved after every boot (fixed only with PinnedPorts)
	httpAddr string

	streams map[string]string // stream name -> data UUID (durable across crashes)

	// Tenant mode (cfg.Tenants > 0): bearer credentials, per-tenant
	// counters, and the run-long streaming watch subscriptions.
	auth         *globus.Auth
	tokens       map[string]string // tenant name -> bearer token ID
	streamTenant map[string]string // stream name -> owning tenant ("" legacy)
	watchers     []*sseWatcher

	tmu    sync.Mutex
	tstats map[string]*tenantStat

	probeChecks     int64
	probeViolations int64
	probeFirstBad   atomic.Value // string: first unexpected probe status

	faultMu     sync.Mutex
	faultCounts map[string]int
	crashes     int
	tornCrashes int
	failovers   int

	submitRetries int64
	ingestRetries int64
	scrapeOK      int64
	scrapeFailed  int64
	scrapeBad     int64 // scrapes that returned bytes that don't parse as a Snapshot

	fatal atomic.Value // error: first unrecoverable infrastructure failure
}

// tenantStat is one tenant's harness-side admission ledger: how many
// ingests the server accepted, how many it pushed back with 429, and
// when the last acceptance happened (the end of the tenant's admission
// window, used by the quota-conformance invariant).
type tenantStat struct {
	admitted  int64
	throttled int64
	lastAdmit time.Time
}

func (h *harness) tenantStatFor(tenant string) *tenantStat {
	s := h.tstats[tenant]
	if s == nil {
		s = &tenantStat{}
		h.tstats[tenant] = s
	}
	return s
}

func (h *harness) tenantAdmitted(tenant string) {
	if h.cfg.Tenants == 0 {
		return
	}
	h.tmu.Lock()
	s := h.tenantStatFor(tenant)
	s.admitted++
	s.lastAdmit = time.Now()
	h.tmu.Unlock()
}

func (h *harness) tenantThrottled(tenant string) {
	if h.cfg.Tenants == 0 {
		return
	}
	h.tmu.Lock()
	h.tenantStatFor(tenant).throttled++
	h.tmu.Unlock()
}

func (h *harness) fail(err error) {
	if err == nil {
		return
	}
	h.fatal.CompareAndSwap(nil, err)
	h.cfg.Logf("loadgen: fatal: %v", err)
}

func (h *harness) fatalErr() error {
	if v := h.fatal.Load(); v != nil {
		return v.(error)
	}
	return nil
}

func (h *harness) currentDB() *emews.DB {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.db
}

func (h *harness) currentStore() *aero.Store {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.store
}

func (h *harness) currentHTTPAddr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.httpAddr
}

func (h *harness) currentTaskAddr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.taskAddr
}

// boot (re)starts the single-stack daemon side from the data directories:
// WAL-recovered task DB with lease reaper plus TCP server, WAL-recovered
// metadata store plus HTTP metadata/metrics server. Listen ports are
// ephemeral on every boot — clients re-resolve through the proxy and the
// current*Addr accessors — unless PinnedPorts asks crash reboots to
// rebind the first boot's ports.
func (h *harness) boot() error {
	if err := h.bootTasks(); err != nil {
		return err
	}
	if err := h.bootAero(); err != nil {
		h.mu.Lock()
		taskSrv, logTasks, reapStop := h.taskSrv, h.logTasks, h.reapStop
		h.mu.Unlock()
		reapStop()
		taskSrv.Close()
		logTasks.Close()
		return err
	}
	return nil
}

func (h *harness) bootTasks() error {
	logTasks, err := wal.Open(h.dirTasks, wal.Options{Name: "wal.loadgen.tasks", Logf: h.cfg.Logf})
	if err != nil {
		return fmt.Errorf("loadgen: open task WAL: %w", err)
	}
	db, err := emews.OpenDB(logTasks)
	if err != nil {
		logTasks.Close()
		return fmt.Errorf("loadgen: recover task DB: %w", err)
	}
	db.SetLeaseTimeout(5 * time.Second)
	taskSrv, err := listenRetry(func() (*emews.Server, error) {
		addr := "127.0.0.1:0"
		if h.cfg.PinnedPorts && h.taskAddr != "" {
			addr = h.taskAddr
		}
		return emews.Serve(db, addr)
	})
	if err != nil {
		logTasks.Close()
		return fmt.Errorf("loadgen: task server: %w", err)
	}
	reapCtx, reapStop := context.WithCancel(context.Background())
	db.StartReaper(reapCtx, 500*time.Millisecond)

	h.mu.Lock()
	h.db, h.logTasks = db, logTasks
	h.taskSrv, h.reapStop = taskSrv, reapStop
	h.taskAddr = taskSrv.Addr()
	h.mu.Unlock()
	if h.proxy != nil {
		h.proxy.SetBackend(taskSrv.Addr())
	}
	return nil
}

func (h *harness) bootAero() error {
	logAero, err := wal.Open(h.dirAero, wal.Options{Name: "wal.loadgen.aero", Logf: h.cfg.Logf})
	if err != nil {
		return fmt.Errorf("loadgen: open aero WAL: %w", err)
	}
	store, err := aero.OpenStore(logAero)
	if err != nil {
		logAero.Close()
		return fmt.Errorf("loadgen: recover metadata store: %w", err)
	}
	ln, err := listenRetry(func() (net.Listener, error) {
		addr := "127.0.0.1:0"
		if h.cfg.PinnedPorts && h.httpAddr != "" {
			addr = h.httpAddr
		}
		return net.Listen("tcp", addr)
	})
	if err != nil {
		logAero.Close()
		return fmt.Errorf("loadgen: http listener: %w", err)
	}
	as := aero.NewServer(store)
	as.SetCompact(store.Compact)
	if h.cfg.Tenants > 0 {
		as.SetAuth(h.auth)
		q := aero.NewQuotas()
		q.SetLimit(aero.QuotaIngest, aero.QuotaLimit{Rate: h.cfg.TenantQuota, Burst: h.cfg.TenantBurst})
		as.SetQuotas(q)
	}
	httpSrv := &http.Server{Handler: as}
	go httpSrv.Serve(ln)

	h.mu.Lock()
	h.store, h.logAero = store, logAero
	h.httpSrv, h.httpAddr = httpSrv, ln.Addr().String()
	h.mu.Unlock()
	return nil
}

// listenRetry retries a bind briefly: with PinnedPorts a rebooted daemon
// can race the previous listener's socket teardown on the pinned port
// (ephemeral binds succeed on the first try).
func listenRetry[T any](bind func() (T, error)) (T, error) {
	var last error
	for attempt := 0; attempt < 40; attempt++ {
		v, err := bind()
		if err == nil {
			return v, nil
		}
		last = err
		time.Sleep(25 * time.Millisecond)
	}
	var zero T
	return zero, last
}

// crash simulates a daemon SIGKILL: the WAL handles are closed first —
// so, as in a real kill, nothing that happens during teardown (like the
// task server failing unresolved claims of dying connections) reaches the
// durable log — then the listeners are torn down, optionally the task
// WAL's tail is chopped, and the whole stack is rebooted from disk (on
// fresh ephemeral ports, or the same ports with PinnedPorts). db.Close
// and Compact are never run: recovery starts from raw log replay.
func (h *harness) crash(torn bool) error {
	h.mu.Lock()
	taskSrv, httpSrv := h.taskSrv, h.httpSrv
	logTasks, logAero := h.logTasks, h.logAero
	reapStop := h.reapStop
	h.mu.Unlock()

	reapStop()
	logTasks.Close()
	logAero.Close()
	if torn {
		if err := tearTail(h.dirTasks, 41); err != nil {
			return fmt.Errorf("loadgen: tear WAL tail: %w", err)
		}
	}
	taskSrv.Close()
	httpSrv.Close()

	h.faultMu.Lock()
	h.crashes++
	if torn {
		h.tornCrashes++
	}
	h.faultMu.Unlock()
	return h.boot()
}

// tearTail chops the last n bytes off the newest WAL segment in dir,
// leaving a torn record for recovery's truncate-and-warn path to handle.
func tearTail(dir string, n int64) error {
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(last, size)
}

// taskConn is the client surface the harness drives tasks through. Both
// *emews.Client (single stack) and *emews.ShardedClient (routing layer
// over a shard group) satisfy it, so the workers and drivers are
// topology-blind.
type taskConn interface {
	SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (int64, error)
	Pop(taskType string, timeout time.Duration) (emews.RemoteTask, bool, error)
	PopBatch(taskType string, max int, timeout time.Duration) ([]emews.RemoteTask, error)
	FinishBatch(ops []emews.FinishOp) ([]error, error)
	Complete(taskID, epoch int64, result string) error
	Fail(taskID, epoch int64, errMsg string) error
	Close() error
}

// dialOpts is the retry/backoff profile every harness client uses.
func dialOpts() []emews.ClientOption {
	return []emews.ClientOption{
		emews.WithOpTimeout(3 * time.Second),
		emews.WithBackoff(5*time.Millisecond, 100*time.Millisecond),
		emews.WithRetries(2),
	}
}

// dialWorker connects a pool worker: through the chaos proxy on the
// single stack, through the per-shard proxies on a group.
func (h *harness) dialWorker() (taskConn, error) {
	if h.sharded() {
		return emews.DialShardGroup(h.proxyAddrs(), dialOpts()...)
	}
	return emews.Dial(h.proxy.Addr(), dialOpts()...)
}

// dialDriver connects the ME-side submit driver: straight at the task
// server on the single stack (the ME process and the daemon share a
// node), through the per-shard proxies on a group — the stable names that
// survive failover.
func (h *harness) dialDriver() (taskConn, error) {
	if h.sharded() {
		return emews.DialShardGroup(h.proxyAddrs(), dialOpts()...)
	}
	return emews.Dial(h.currentTaskAddr(), dialOpts()...)
}

// pool is a crash-restartable set of worker goroutines popping tasks
// through the chaos proxy and resolving them per their payload directive.
type pool struct {
	h        *harness
	ctx      context.Context
	cancel   context.CancelFunc
	hardStop chan struct{} // closed on crash: abandon claims mid-task
	hardOnce sync.Once
	wg       sync.WaitGroup
}

func (h *harness) startPool() *pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pool{h: h, ctx: ctx, cancel: cancel, hardStop: make(chan struct{})}
	for i := 0; i < h.cfg.Workers; i++ {
		taskType := h.cfg.TaskTypes[i%len(h.cfg.TaskTypes)]
		p.wg.Add(1)
		go p.worker(taskType)
	}
	return p
}

func (h *harness) currentPool() *pool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pool
}

func (h *harness) setPool(p *pool) {
	h.mu.Lock()
	h.pool = p
	h.mu.Unlock()
}

// stop drains gracefully: workers finish their current claim, then exit.
func (p *pool) stop() {
	p.cancel()
	p.wg.Wait()
}

// crash hard-kills the pool: workers abandon in-flight claims without
// resolving them, leaving recovery to the server's connection cleanup and
// the lease reaper.
func (p *pool) crash() {
	p.hardOnce.Do(func() { close(p.hardStop) })
	p.cancel()
	p.wg.Wait()
}

func (p *pool) worker(taskType string) {
	defer p.wg.Done()
	var cl taskConn
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	drop := func() {
		if cl != nil {
			cl.Close()
			cl = nil
		}
	}
	pause := func(d time.Duration) bool {
		select {
		case <-p.ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	for p.ctx.Err() == nil {
		if cl == nil {
			c, err := p.h.dialWorker()
			if err != nil {
				if !pause(25 * time.Millisecond) {
					return
				}
				continue
			}
			cl = c
		}
		var tasks []emews.RemoteTask
		var err error
		if p.h.cfg.PopBatch > 1 {
			tasks, err = cl.PopBatch(taskType, p.h.cfg.PopBatch, 200*time.Millisecond)
		} else {
			var task emews.RemoteTask
			var ok bool
			task, ok, err = cl.Pop(taskType, 200*time.Millisecond)
			if err == nil && ok {
				tasks = []emews.RemoteTask{task}
			}
		}
		if err != nil {
			drop()
			if !pause(10 * time.Millisecond) {
				return
			}
			continue
		}
		if len(tasks) == 0 {
			continue
		}
		// The whole lease is observed up front: later invariants reason
		// about pop order per task, and a task can appear at most once per
		// lease, so recording at receipt preserves the epoch ordering the
		// single-op path had.
		for _, task := range tasks {
			p.h.tracker.popped(task.ID, task.Epoch)
		}
		fins := make([]emews.FinishOp, 0, len(tasks))
		kinds := make([]string, 0, len(tasks))
		for _, task := range tasks {
			var spec payloadSpec
			if err := json.Unmarshal([]byte(task.Payload), &spec); err != nil {
				// Not a plan task; should never happen. Fail it so it terminates.
				spec = payloadSpec{Index: -1, FailN: failAlways}
			}
			// Simulated model work. A pool crash abandons the claim (and the
			// rest of the lease) mid-task — the point of the fault.
			select {
			case <-time.After(time.Duration(spec.WorkUS) * time.Microsecond):
			case <-p.hardStop:
				return
			}
			if spec.FailN >= failAlways || task.Epoch <= int64(spec.FailN) {
				fins = append(fins, emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Failed: true,
					ErrMsg: fmt.Sprintf("injected failure at epoch %d", task.Epoch)})
				kinds = append(kinds, "fail")
			} else {
				fins = append(fins, emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: submitResult(spec.Index)})
				kinds = append(kinds, "complete")
			}
		}
		var dropConn bool
		if p.h.cfg.PopBatch > 1 {
			errs, berr := cl.FinishBatch(fins)
			if berr != nil {
				// The exchange failed wholesale; every resolution is unknown
				// and the server's connection cleanup requeues the claims.
				for i, fin := range fins {
					p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], berr)
				}
				dropConn = errors.Is(berr, emews.ErrTransport)
			} else {
				for i, fin := range fins {
					p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], errs[i])
				}
			}
		} else {
			for i, fin := range fins {
				var rerr error
				if fin.Failed {
					rerr = cl.Fail(fin.TaskID, fin.Epoch, fin.ErrMsg)
				} else {
					rerr = cl.Complete(fin.TaskID, fin.Epoch, fin.Result)
				}
				p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], rerr)
				if rerr != nil && errors.Is(rerr, emews.ErrTransport) {
					dropConn = true
				}
			}
		}
		if dropConn {
			drop()
		}
	}
}

// ---- drivers ----

// submitDriver walks the submit plan, pacing open-loop by the event's
// AtMS offset or closed-loop by the in-flight window, and guarantees each
// event lands exactly once (at-least-once send + presence check on the
// ambiguous error paths).
func (h *harness) submitDriver() {
	var cl taskConn
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventSubmit {
			continue
		}
		if h.fatalErr() != nil {
			return
		}
		if h.cfg.Closed {
			for {
				st := h.statsAll()
				if st.Queued+st.Running < h.cfg.Window {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
		} else {
			sleepUntil(h.start.Add(time.Duration(ev.AtMS) * time.Millisecond))
		}
		cl = h.ensureSubmitted(cl, ev)
	}
}

// ensureSubmitted submits ev, reconciling ambiguity: when the send fails
// the task may or may not have been applied, so the driver checks the
// live ledger for the event's plan index before re-sending. The returned
// client replaces the caller's (it may have been redialed or dropped).
func (h *harness) ensureSubmitted(cl taskConn, ev *PlanEvent) taskConn {
	for attempt := 0; ; attempt++ {
		if h.fatalErr() != nil {
			return cl
		}
		if attempt > 0 {
			atomic.AddInt64(&h.submitRetries, 1)
			if _, found := h.tasksByPlanIndex()[ev.Index]; found {
				return cl // the ambiguous send was applied after all
			}
			time.Sleep(20 * time.Millisecond)
		}
		if cl == nil {
			c, err := h.dialDriver()
			if err != nil {
				continue
			}
			cl = c
		}
		_, err := cl.SubmitRetry(ev.TaskType, ev.Priority, ev.Payload, ev.MaxAttempts)
		if err == nil {
			return cl
		}
		cl.Close()
		cl = nil
	}
}

// tasksByPlanIndex scans the live ledger (all shards) and maps plan
// index -> task IDs.
func (h *harness) tasksByPlanIndex() map[int][]int64 {
	out := map[int][]int64{}
	for _, t := range h.dumpAll() {
		var spec payloadSpec
		if err := json.Unmarshal([]byte(t.Payload), &spec); err == nil {
			out[spec.Index] = append(out[spec.Index], t.ID)
		}
	}
	return out
}

// ingestDriver walks one tenant's slice of the ingest plan ("" = the
// whole plan in single-tenant mode), appending data versions over the
// real HTTP API with presence-check reconciliation (a version whose POST
// response was lost must not be appended twice). Tenant mode runs one
// driver per tenant so a throttled noisy neighbor backing off on 429s
// never head-of-line-blocks its well-behaved neighbors' pacing.
func (h *harness) ingestDriver(tenant string) {
	hc := &http.Client{Timeout: 5 * time.Second}
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventIngest || ev.Tenant != tenant {
			continue
		}
		if h.fatalErr() != nil {
			return
		}
		sleepUntil(h.start.Add(time.Duration(ev.AtMS) * time.Millisecond))
		h.ensureIngested(hc, ev)
	}
}

func (h *harness) ensureIngested(hc *http.Client, ev *PlanEvent) {
	uuid := h.streams[ev.Stream]
	body, err := json.Marshal(aero.Version{
		Checksum:   ev.Checksum,
		Size:       1 + ev.Index,
		Endpoint:   "loadgen",
		Collection: ev.Stream,
		Path:       "/" + ev.Checksum,
	})
	if err != nil {
		h.fail(err)
		return
	}
	throttled := false
	for attempt := 0; ; attempt++ {
		if h.fatalErr() != nil {
			return
		}
		if attempt > 0 && !throttled {
			atomic.AddInt64(&h.ingestRetries, 1)
			time.Sleep(20 * time.Millisecond)
		}
		throttled = false
		if h.ingestPresent(ev) {
			return
		}
		req, err := http.NewRequest(http.MethodPost,
			"http://"+h.currentHTTPAddr()+"/data/"+uuid+"/versions", bytes.NewReader(body))
		if err != nil {
			h.fail(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if tok := h.tokens[ev.Tenant]; tok != "" {
			req.Header.Set("Authorization", "Bearer "+tok)
		}
		resp, err := hc.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			h.tenantAdmitted(ev.Tenant)
			return
		case http.StatusTooManyRequests:
			// Quota pushback: honor the advertised backoff (capped — the
			// server rounds up to whole seconds) and try again. These are
			// expected for the noisy tenant, so they are counted per
			// tenant, not as infrastructure retries.
			h.tenantThrottled(ev.Tenant)
			throttled = true
			d := 100 * time.Millisecond
			if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s > 0 {
				d = time.Duration(s) * time.Second
			}
			if d > time.Second {
				d = time.Second
			}
			time.Sleep(d)
		}
	}
}

func (h *harness) ingestPresent(ev *PlanEvent) bool {
	// Tenant("") is the legacy single-tenant view, so this one lookup
	// serves both modes.
	rec, err := h.currentStore().Tenant(ev.Tenant).GetData(h.streams[ev.Stream])
	if err != nil {
		return false
	}
	for _, v := range rec.Versions {
		if v.Checksum == ev.Checksum {
			return true
		}
	}
	return false
}

// scrapeLoop polls /metrics like an external monitoring agent would,
// proving the observability surface stays consistent under chaos: scrape
// failures during fault windows are fine, malformed payloads never are.
func (h *harness) scrapeLoop(ctx context.Context) {
	hc := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(h.cfg.ScrapeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		resp, err := hc.Get("http://" + h.currentHTTPAddr() + "/metrics")
		if err != nil {
			atomic.AddInt64(&h.scrapeFailed, 1)
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddInt64(&h.scrapeFailed, 1)
			continue
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			atomic.AddInt64(&h.scrapeBad, 1)
			continue
		}
		atomic.AddInt64(&h.scrapeOK, 1)
	}
}

// sseWatcher holds one tenant's streaming watch subscription (SSE over
// GET /watch) for the whole run and records exactly what was delivered:
// the watch-delivery invariant proves no event arrived twice and that
// delivered + dropped accounts for every version the tenant published.
type sseWatcher struct {
	tenant string
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	delivered map[string]int // "uuid@version" -> delivery count
	events    int64          // update frames received
	dropped   int64          // cumulative drop counter from the last frame
	readErr   error          // stream death before cancel (keep-alives make EOF impossible mid-run)
}

// startWatcher opens the subscription and blocks until the server's
// ready frame commits it — only then may the drivers start publishing,
// or early versions could legally be missed rather than dropped.
func (h *harness) startWatcher(tenant string) (*sseWatcher, error) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &sseWatcher{tenant: tenant, cancel: cancel, done: make(chan struct{}),
		delivered: map[string]int{}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+h.currentHTTPAddr()+"/watch?buffer=64", nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Authorization", "Bearer "+h.tokens[tenant])
	resp, err := (&http.Client{}).Do(req) // no client timeout: the stream lives all run
	if err != nil {
		cancel()
		return nil, fmt.Errorf("loadgen: watch for %s: %w", tenant, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("loadgen: watch for %s: status %d", tenant, resp.StatusCode)
	}
	ready := make(chan struct{})
	go w.consume(resp.Body, ready)
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		cancel()
		return nil, fmt.Errorf("loadgen: watch for %s: no ready frame", tenant)
	}
	return w, nil
}

func (w *sseWatcher) consume(body io.ReadCloser, ready chan struct{}) {
	defer close(w.done)
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var event, data string
	readyOnce := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "": // blank line dispatches the frame
			switch event {
			case "ready":
				if !readyOnce {
					readyOnce = true
					close(ready)
				}
			case "update":
				var u struct {
					UUID    string `json:"uuid"`
					Version int    `json:"version"`
					Dropped int64  `json:"dropped"`
				}
				if err := json.Unmarshal([]byte(data), &u); err == nil {
					w.mu.Lock()
					w.delivered[fmt.Sprintf("%s@%d", u.UUID, u.Version)]++
					w.events++
					w.dropped = u.Dropped // cumulative, monotone
					w.mu.Unlock()
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
		w.mu.Lock()
		w.readErr = err
		w.mu.Unlock()
	}
}

// accounted reports delivered update frames + dropped so far.
func (w *sseWatcher) accounted() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events + w.dropped
}

// plannedIngests counts the plan's ingest events per tenant — the number
// of versions each tenant's watcher must eventually account for.
func (h *harness) plannedIngests() map[string]int {
	out := map[string]int{}
	for i := range h.plan {
		if h.plan[i].Kind == EventIngest {
			out[h.plan[i].Tenant]++
		}
	}
	return out
}

// awaitWatchers gives the streaming subscriptions time to finish
// draining after the last ingest landed: every published version must
// end up delivered or counted dropped before the accounting is read.
func (h *harness) awaitWatchers(timeout time.Duration) {
	if len(h.watchers) == 0 {
		return
	}
	planned := h.plannedIngests()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		settled := true
		for _, w := range h.watchers {
			if w.accounted() < int64(planned[w.tenant]) {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// stopWatchers tears the subscriptions down (idempotent).
func (h *harness) stopWatchers() {
	for _, w := range h.watchers {
		w.cancel()
	}
	for _, w := range h.watchers {
		select {
		case <-w.done:
		case <-time.After(5 * time.Second):
		}
	}
}

// probeDriver hammers the isolation boundary while the workload is
// live: a cross-tenant read with a valid neighbor token must 404
// (indistinguishable from a miss) and an unauthenticated read must 401.
// Transport errors are not isolation signals and are skipped.
func (h *harness) probeDriver() {
	hc := &http.Client{Timeout: 2 * time.Second}
	end := h.start.Add(h.cfg.Duration)
	for i := 0; time.Now().Before(end); i++ {
		if h.fatalErr() != nil {
			return
		}
		victim := (i + 1) % h.cfg.Tenants
		target := h.streams[TenantStreamName(victim, 0)]
		if h.cfg.Tenants > 1 {
			prober := TenantName(i % h.cfg.Tenants)
			h.probe(hc, target, h.tokens[prober], http.StatusNotFound,
				"cross-tenant read by "+prober)
		}
		h.probe(hc, target, "", http.StatusUnauthorized, "unauthenticated read")
		time.Sleep(50 * time.Millisecond)
	}
}

func (h *harness) probe(hc *http.Client, uuid, token string, want int, desc string) {
	req, err := http.NewRequest(http.MethodGet, "http://"+h.currentHTTPAddr()+"/data/"+uuid, nil)
	if err != nil {
		return
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	atomic.AddInt64(&h.probeChecks, 1)
	if resp.StatusCode != want {
		atomic.AddInt64(&h.probeViolations, 1)
		h.probeFirstBad.CompareAndSwap(nil, fmt.Sprintf("%s: got %d, want %d", desc, resp.StatusCode, want))
	}
}

// faultRunner fires the fault schedule at its absolute offsets. Windowed
// faults (refuse, latency) hold the runner for their window, so
// overlapping windows are not supported — schedules are sequential.
func (h *harness) faultRunner() {
	for _, f := range h.cfg.Faults {
		if h.fatalErr() != nil {
			return
		}
		sleepUntil(h.start.Add(f.At))
		h.faultMu.Lock()
		h.faultCounts[string(f.Kind)]++
		h.faultMu.Unlock()
		h.cfg.Logf("loadgen: fault %s", f)
		switch f.Kind {
		case FaultKill:
			for _, p := range h.proxies() {
				p.KillActive()
			}
		case FaultRefuse:
			for _, p := range h.proxies() {
				p.SetRefuse(true)
			}
			time.Sleep(f.Value)
			for _, p := range h.proxies() {
				p.SetRefuse(false)
			}
		case FaultLatency:
			for _, p := range h.proxies() {
				p.SetLatency(f.Value)
			}
			time.Sleep(f.Dur)
			for _, p := range h.proxies() {
				p.SetLatency(0)
			}
		case FaultPoolCrash:
			h.currentPool().crash()
			time.Sleep(f.Value)
			h.setPool(h.startPool())
		case FaultCrash:
			h.fail(h.crash(false))
		case FaultTornCrash:
			h.fail(h.crash(true))
		case FaultShardFailover:
			h.fail(h.failover(f.Shard))
		}
	}
}

// sweepSubmits re-submits plan events whose tasks are missing from the
// ledger. Only a torn-tail crash can eat an acknowledged submit, and a
// real ME process keeps its own intent log for exactly this
// reconciliation.
func (h *harness) sweepSubmits() {
	present := h.tasksByPlanIndex()
	var cl taskConn
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventSubmit {
			continue
		}
		if _, ok := present[ev.Index]; ok {
			continue
		}
		h.cfg.Logf("loadgen: sweep resubmit of plan event %d (lost to a torn crash)", ev.Index)
		cl = h.ensureSubmitted(cl, ev)
	}
	if cl != nil {
		cl.Close()
	}
}

// sweepIngests re-appends versions missing from the store.
func (h *harness) sweepIngests() {
	hc := &http.Client{Timeout: 5 * time.Second}
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventIngest || h.ingestPresent(ev) {
			continue
		}
		h.ensureIngested(hc, ev)
	}
}

// drain waits for the queue to empty: every submitted task terminal,
// nothing running.
func (h *harness) drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := h.statsAll()
		if st.Queued == 0 && st.Running == 0 {
			return
		}
		if h.fatalErr() != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// Run executes one full harness run: boot the stack, drive the plan
// through the chaos schedule, drain, audit, and report. Infrastructure
// failures (not invariant violations) are returned as errors; invariant
// violations make Report.Pass false.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := validateFaults(cfg.Faults, cfg.Shards, cfg.Tenants); err != nil {
		return nil, err
	}
	plan := BuildPlan(cfg)

	dataDir := cfg.DataDir
	ownDir := false
	if dataDir == "" {
		var err error
		dataDir, err = os.MkdirTemp("", "osprey-loadgen-*")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}
	h := &harness{
		cfg:          cfg,
		plan:         plan,
		tracker:      newTracker(),
		dirTasks:     filepath.Join(dataDir, "tasks"),
		dirAero:      filepath.Join(dataDir, "aero"),
		streams:      map[string]string{},
		streamTenant: map[string]string{},
		tokens:       map[string]string{},
		tstats:       map[string]*tenantStat{},
		faultCounts:  map[string]int{},
	}
	for _, d := range []string{h.dirTasks, h.dirAero} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	if cfg.Tenants > 0 {
		// One bearer token per tenant, minted before the metadata server
		// boots so bootAero can wire the validator in.
		h.auth = globus.NewAuth()
		for t := 0; t < cfg.Tenants; t++ {
			name := TenantName(t)
			h.tokens[name] = h.auth.Issue(name, 0, globus.ScopeAero).ID
		}
	}

	preObs := obs.Default().Snapshot()
	if cfg.Shards > 1 {
		if err := h.bootAero(); err != nil {
			return nil, err
		}
		if err := h.bootShards(); err != nil {
			h.httpSrv.Close()
			h.logAero.Close()
			return nil, err
		}
		defer func() {
			for _, p := range h.proxies() {
				p.Close()
			}
		}()
	} else {
		if err := h.boot(); err != nil {
			return nil, err
		}
		proxy, err := chaos.NewProxy(h.taskAddr)
		if err != nil {
			return nil, err
		}
		h.proxy = proxy
		defer proxy.Close()
	}
	if cfg.Tenants > 0 {
		for t := 0; t < cfg.Tenants; t++ {
			tn := TenantName(t)
			for i := 0; i < cfg.IngestStreams; i++ {
				name := TenantStreamName(t, i)
				rec, err := h.currentStore().Tenant(tn).CreateData(name, "loadgen://"+name)
				if err != nil {
					return nil, err
				}
				h.streams[name] = rec.UUID
				h.streamTenant[name] = tn
			}
		}
		// Subscriptions must be committed (ready frame seen) before the
		// first version is published, or early events would be misses
		// rather than deliveries/drops and the accounting could not close.
		for t := 0; t < cfg.Tenants; t++ {
			w, err := h.startWatcher(TenantName(t))
			if err != nil {
				h.stopWatchers()
				return nil, err
			}
			h.watchers = append(h.watchers, w)
		}
		defer h.stopWatchers()
	} else {
		for i := 0; i < cfg.IngestStreams; i++ {
			name := StreamName(i)
			rec, err := h.currentStore().CreateData(name, "loadgen://"+name)
			if err != nil {
				return nil, err
			}
			h.streams[name] = rec.UUID
		}
	}

	h.start = time.Now()
	h.setPool(h.startPool())
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	go h.scrapeLoop(scrapeCtx)

	drivers := []func(){h.submitDriver, h.faultRunner}
	if cfg.Tenants > 0 {
		for t := 0; t < cfg.Tenants; t++ {
			tn := TenantName(t)
			drivers = append(drivers, func() { h.ingestDriver(tn) })
		}
		drivers = append(drivers, h.probeDriver)
	} else {
		drivers = append(drivers, func() { h.ingestDriver("") })
	}
	var wg sync.WaitGroup
	for _, f := range drivers {
		f := f
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
	}
	wg.Wait()

	if err := h.fatalErr(); err != nil {
		stopScrape()
		h.currentPool().crash()
		return nil, err
	}

	// Post-plan reconciliation, then heal the network and drain.
	h.sweepSubmits()
	h.sweepIngests()
	for _, p := range h.proxies() {
		p.SetRefuse(false)
		p.SetLatency(0)
		p.SetAcceptDelay(0)
	}
	h.drain(cfg.DrainTimeout)
	h.awaitWatchers(10 * time.Second)
	elapsed := time.Since(h.start)
	stopScrape()
	h.currentPool().stop()
	h.stopWatchers()

	// Graceful teardown: capture final state, then close the stack and
	// audit the durable history.
	dump := h.dumpAll()
	stats := h.statsAll()
	streams := map[string]*aero.DataRecord{}
	for name, uuid := range h.streams {
		rec, err := h.currentStore().Tenant(h.streamTenant[name]).GetData(uuid)
		if err != nil {
			return nil, err
		}
		streams[name] = rec
	}
	postObs := obs.Default().Snapshot()

	var audit *emews.WALAudit
	var shAudit *emews.ShardsAudit
	if h.sharded() {
		if err := h.closeShards(); err != nil {
			return nil, err
		}
		h.httpSrv.Close()
		if err := h.logAero.Close(); err != nil {
			return nil, err
		}
		sa, err := emews.AuditShards(h.auditDirs())
		if err != nil {
			return nil, err
		}
		shAudit, audit = sa, sa.Combined
	} else {
		h.reapStop()
		h.taskSrv.Close()
		h.httpSrv.Close()
		if err := h.logTasks.Close(); err != nil {
			return nil, err
		}
		if err := h.logAero.Close(); err != nil {
			return nil, err
		}
		a, err := emews.AuditWAL(h.dirTasks)
		if err != nil {
			return nil, err
		}
		audit = a
	}

	report := h.buildReport(plan, dump, stats, streams, audit, shAudit, postObs.Delta(preObs), elapsed)
	if ownDir {
		if report.Pass {
			os.RemoveAll(dataDir)
		} else {
			report.DataDir = dataDir // keep the evidence
		}
	}
	return report, nil
}
