package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osprey/internal/aero"
	"osprey/internal/chaos"
	"osprey/internal/emews"
	"osprey/internal/obs"
	"osprey/internal/wal"
)

// Config shapes one harness run. The zero value is usable: every field
// has a default (see withDefaults). Seed plus the shape parameters fully
// determine the workload plan; see the package comment for the
// determinism contract.
type Config struct {
	Seed     uint64
	Duration time.Duration // workload window (drain time comes on top)
	Rate     float64       // task submissions per second (plan size)
	Workers  int           // worker goroutines popping through the chaos proxy
	Closed   bool          // closed-loop: pace submits by in-flight cap, not wall clock
	Window   int           // closed-loop in-flight cap; default 2×Workers

	// Shards selects the task-substrate topology: <=1 runs the single
	// stack, >=2 runs a shard group (consistent-hash routed submits,
	// strided IDs, one warm follower per shard) behind per-shard chaos
	// proxies. Crash faults need the single stack; shard-failover needs a
	// group — Run rejects mismatched schedules.
	Shards int

	// PinnedPorts makes crash reboots rebind the listen ports of the first
	// boot instead of taking fresh ephemeral ones. The harness re-resolves
	// addresses after every reboot, so pinning is never required; it only
	// recreates a fixed-address deployment, and on a busy host the rebind
	// can race another process claiming the freed port.
	PinnedPorts bool

	TaskTypes []string      // task-type mix; workers are assigned round-robin
	FailFrac  float64       // fraction of tasks that fail at least once (<0 disables)
	WorkMean  time.Duration // mean simulated model work per attempt
	PopBatch  int           // tasks leased per worker round trip; 1 = single-op path

	IngestRate    float64 // AERO data-version ingests per second (<0 disables)
	IngestStreams int     // data items the ingests round-robin over

	ScrapeEvery time.Duration // metrics-scrape interval

	DataDir string // WAL root; "" = private temp dir, removed when the run passes
	Faults  []FaultEvent

	DrainTimeout time.Duration // max wait for the queue to empty after the plan
	Logf         func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Duration < minDuration {
		c.Duration = minDuration
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if len(c.TaskTypes) == 0 {
		c.TaskTypes = []string{"sim", "calibrate"}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Workers < len(c.TaskTypes) {
		c.Workers = len(c.TaskTypes) // every type needs a worker or the drain hangs
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Workers
	}
	if c.FailFrac == 0 {
		c.FailFrac = 0.15
	}
	if c.WorkMean <= 0 {
		c.WorkMean = 2 * time.Millisecond
	}
	if c.PopBatch <= 0 {
		c.PopBatch = 4
	}
	if c.IngestRate == 0 {
		c.IngestRate = 5
	}
	if c.IngestStreams <= 0 {
		c.IngestStreams = 2
	}
	if c.ScrapeEvery <= 0 {
		c.ScrapeEvery = 500 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// tracker is the harness-side ledger of what workers observed: popped
// attempt epochs and accepted resolutions, keyed so the end-of-run
// invariants can prove fencing worked from the client's point of view.
type tracker struct {
	mu       sync.Mutex
	pops     map[int64][]int64          // task ID -> popped epochs, observation order
	accepted map[int64]map[int64]string // task ID -> epoch -> "complete" | "fail"

	stale      int64 // resolutions rejected with ErrStaleClaim (expected under chaos)
	unresolved int64 // resolutions lost to transport errors (server cleanup requeues)
}

func newTracker() *tracker {
	return &tracker{pops: map[int64][]int64{}, accepted: map[int64]map[int64]string{}}
}

func (tr *tracker) popped(id, epoch int64) {
	tr.mu.Lock()
	tr.pops[id] = append(tr.pops[id], epoch)
	tr.mu.Unlock()
}

func (tr *tracker) resolved(id, epoch int64, kind string, err error) {
	switch {
	case err == nil:
		tr.mu.Lock()
		if tr.accepted[id] == nil {
			tr.accepted[id] = map[int64]string{}
		}
		tr.accepted[id][epoch] = kind
		tr.mu.Unlock()
	case errors.Is(err, emews.ErrStaleClaim):
		atomic.AddInt64(&tr.stale, 1)
	default:
		atomic.AddInt64(&tr.unresolved, 1)
	}
}

// harness owns the full service stack for one run. The mutable service
// handles (db, store, servers, logs) are swapped atomically under mu by
// crash/boot (single stack) or failover (shard group); everything else is
// fixed for the run.
type harness struct {
	cfg     Config
	plan    []PlanEvent
	start   time.Time
	tracker *tracker
	proxy   *chaos.Proxy  // single-stack chaos proxy; nil in sharded runs
	shards  []*shardState // shard group; nil in single-stack runs

	dirTasks, dirAero string

	mu       sync.Mutex
	db       *emews.DB
	store    *aero.Store
	logTasks *wal.Log
	logAero  *wal.Log
	taskSrv  *emews.Server
	httpSrv  *http.Server
	reapStop context.CancelFunc
	pool     *pool
	taskAddr string // re-resolved after every boot (fixed only with PinnedPorts)
	httpAddr string

	streams map[string]string // stream name -> data UUID (durable across crashes)

	faultMu     sync.Mutex
	faultCounts map[string]int
	crashes     int
	tornCrashes int
	failovers   int

	submitRetries int64
	ingestRetries int64
	scrapeOK      int64
	scrapeFailed  int64
	scrapeBad     int64 // scrapes that returned bytes that don't parse as a Snapshot

	fatal atomic.Value // error: first unrecoverable infrastructure failure
}

func (h *harness) fail(err error) {
	if err == nil {
		return
	}
	h.fatal.CompareAndSwap(nil, err)
	h.cfg.Logf("loadgen: fatal: %v", err)
}

func (h *harness) fatalErr() error {
	if v := h.fatal.Load(); v != nil {
		return v.(error)
	}
	return nil
}

func (h *harness) currentDB() *emews.DB {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.db
}

func (h *harness) currentStore() *aero.Store {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.store
}

func (h *harness) currentHTTPAddr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.httpAddr
}

func (h *harness) currentTaskAddr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.taskAddr
}

// boot (re)starts the single-stack daemon side from the data directories:
// WAL-recovered task DB with lease reaper plus TCP server, WAL-recovered
// metadata store plus HTTP metadata/metrics server. Listen ports are
// ephemeral on every boot — clients re-resolve through the proxy and the
// current*Addr accessors — unless PinnedPorts asks crash reboots to
// rebind the first boot's ports.
func (h *harness) boot() error {
	if err := h.bootTasks(); err != nil {
		return err
	}
	if err := h.bootAero(); err != nil {
		h.mu.Lock()
		taskSrv, logTasks, reapStop := h.taskSrv, h.logTasks, h.reapStop
		h.mu.Unlock()
		reapStop()
		taskSrv.Close()
		logTasks.Close()
		return err
	}
	return nil
}

func (h *harness) bootTasks() error {
	logTasks, err := wal.Open(h.dirTasks, wal.Options{Name: "wal.loadgen.tasks", Logf: h.cfg.Logf})
	if err != nil {
		return fmt.Errorf("loadgen: open task WAL: %w", err)
	}
	db, err := emews.OpenDB(logTasks)
	if err != nil {
		logTasks.Close()
		return fmt.Errorf("loadgen: recover task DB: %w", err)
	}
	db.SetLeaseTimeout(5 * time.Second)
	taskSrv, err := listenRetry(func() (*emews.Server, error) {
		addr := "127.0.0.1:0"
		if h.cfg.PinnedPorts && h.taskAddr != "" {
			addr = h.taskAddr
		}
		return emews.Serve(db, addr)
	})
	if err != nil {
		logTasks.Close()
		return fmt.Errorf("loadgen: task server: %w", err)
	}
	reapCtx, reapStop := context.WithCancel(context.Background())
	db.StartReaper(reapCtx, 500*time.Millisecond)

	h.mu.Lock()
	h.db, h.logTasks = db, logTasks
	h.taskSrv, h.reapStop = taskSrv, reapStop
	h.taskAddr = taskSrv.Addr()
	h.mu.Unlock()
	if h.proxy != nil {
		h.proxy.SetBackend(taskSrv.Addr())
	}
	return nil
}

func (h *harness) bootAero() error {
	logAero, err := wal.Open(h.dirAero, wal.Options{Name: "wal.loadgen.aero", Logf: h.cfg.Logf})
	if err != nil {
		return fmt.Errorf("loadgen: open aero WAL: %w", err)
	}
	store, err := aero.OpenStore(logAero)
	if err != nil {
		logAero.Close()
		return fmt.Errorf("loadgen: recover metadata store: %w", err)
	}
	ln, err := listenRetry(func() (net.Listener, error) {
		addr := "127.0.0.1:0"
		if h.cfg.PinnedPorts && h.httpAddr != "" {
			addr = h.httpAddr
		}
		return net.Listen("tcp", addr)
	})
	if err != nil {
		logAero.Close()
		return fmt.Errorf("loadgen: http listener: %w", err)
	}
	as := aero.NewServer(store)
	as.SetCompact(store.Compact)
	httpSrv := &http.Server{Handler: as}
	go httpSrv.Serve(ln)

	h.mu.Lock()
	h.store, h.logAero = store, logAero
	h.httpSrv, h.httpAddr = httpSrv, ln.Addr().String()
	h.mu.Unlock()
	return nil
}

// listenRetry retries a bind briefly: with PinnedPorts a rebooted daemon
// can race the previous listener's socket teardown on the pinned port
// (ephemeral binds succeed on the first try).
func listenRetry[T any](bind func() (T, error)) (T, error) {
	var last error
	for attempt := 0; attempt < 40; attempt++ {
		v, err := bind()
		if err == nil {
			return v, nil
		}
		last = err
		time.Sleep(25 * time.Millisecond)
	}
	var zero T
	return zero, last
}

// crash simulates a daemon SIGKILL: the WAL handles are closed first —
// so, as in a real kill, nothing that happens during teardown (like the
// task server failing unresolved claims of dying connections) reaches the
// durable log — then the listeners are torn down, optionally the task
// WAL's tail is chopped, and the whole stack is rebooted from disk (on
// fresh ephemeral ports, or the same ports with PinnedPorts). db.Close
// and Compact are never run: recovery starts from raw log replay.
func (h *harness) crash(torn bool) error {
	h.mu.Lock()
	taskSrv, httpSrv := h.taskSrv, h.httpSrv
	logTasks, logAero := h.logTasks, h.logAero
	reapStop := h.reapStop
	h.mu.Unlock()

	reapStop()
	logTasks.Close()
	logAero.Close()
	if torn {
		if err := tearTail(h.dirTasks, 41); err != nil {
			return fmt.Errorf("loadgen: tear WAL tail: %w", err)
		}
	}
	taskSrv.Close()
	httpSrv.Close()

	h.faultMu.Lock()
	h.crashes++
	if torn {
		h.tornCrashes++
	}
	h.faultMu.Unlock()
	return h.boot()
}

// tearTail chops the last n bytes off the newest WAL segment in dir,
// leaving a torn record for recovery's truncate-and-warn path to handle.
func tearTail(dir string, n int64) error {
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(last, size)
}

// taskConn is the client surface the harness drives tasks through. Both
// *emews.Client (single stack) and *emews.ShardedClient (routing layer
// over a shard group) satisfy it, so the workers and drivers are
// topology-blind.
type taskConn interface {
	SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (int64, error)
	Pop(taskType string, timeout time.Duration) (emews.RemoteTask, bool, error)
	PopBatch(taskType string, max int, timeout time.Duration) ([]emews.RemoteTask, error)
	FinishBatch(ops []emews.FinishOp) ([]error, error)
	Complete(taskID, epoch int64, result string) error
	Fail(taskID, epoch int64, errMsg string) error
	Close() error
}

// dialOpts is the retry/backoff profile every harness client uses.
func dialOpts() []emews.ClientOption {
	return []emews.ClientOption{
		emews.WithOpTimeout(3 * time.Second),
		emews.WithBackoff(5*time.Millisecond, 100*time.Millisecond),
		emews.WithRetries(2),
	}
}

// dialWorker connects a pool worker: through the chaos proxy on the
// single stack, through the per-shard proxies on a group.
func (h *harness) dialWorker() (taskConn, error) {
	if h.sharded() {
		return emews.DialShardGroup(h.proxyAddrs(), dialOpts()...)
	}
	return emews.Dial(h.proxy.Addr(), dialOpts()...)
}

// dialDriver connects the ME-side submit driver: straight at the task
// server on the single stack (the ME process and the daemon share a
// node), through the per-shard proxies on a group — the stable names that
// survive failover.
func (h *harness) dialDriver() (taskConn, error) {
	if h.sharded() {
		return emews.DialShardGroup(h.proxyAddrs(), dialOpts()...)
	}
	return emews.Dial(h.currentTaskAddr(), dialOpts()...)
}

// pool is a crash-restartable set of worker goroutines popping tasks
// through the chaos proxy and resolving them per their payload directive.
type pool struct {
	h        *harness
	ctx      context.Context
	cancel   context.CancelFunc
	hardStop chan struct{} // closed on crash: abandon claims mid-task
	hardOnce sync.Once
	wg       sync.WaitGroup
}

func (h *harness) startPool() *pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pool{h: h, ctx: ctx, cancel: cancel, hardStop: make(chan struct{})}
	for i := 0; i < h.cfg.Workers; i++ {
		taskType := h.cfg.TaskTypes[i%len(h.cfg.TaskTypes)]
		p.wg.Add(1)
		go p.worker(taskType)
	}
	return p
}

func (h *harness) currentPool() *pool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pool
}

func (h *harness) setPool(p *pool) {
	h.mu.Lock()
	h.pool = p
	h.mu.Unlock()
}

// stop drains gracefully: workers finish their current claim, then exit.
func (p *pool) stop() {
	p.cancel()
	p.wg.Wait()
}

// crash hard-kills the pool: workers abandon in-flight claims without
// resolving them, leaving recovery to the server's connection cleanup and
// the lease reaper.
func (p *pool) crash() {
	p.hardOnce.Do(func() { close(p.hardStop) })
	p.cancel()
	p.wg.Wait()
}

func (p *pool) worker(taskType string) {
	defer p.wg.Done()
	var cl taskConn
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	drop := func() {
		if cl != nil {
			cl.Close()
			cl = nil
		}
	}
	pause := func(d time.Duration) bool {
		select {
		case <-p.ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	for p.ctx.Err() == nil {
		if cl == nil {
			c, err := p.h.dialWorker()
			if err != nil {
				if !pause(25 * time.Millisecond) {
					return
				}
				continue
			}
			cl = c
		}
		var tasks []emews.RemoteTask
		var err error
		if p.h.cfg.PopBatch > 1 {
			tasks, err = cl.PopBatch(taskType, p.h.cfg.PopBatch, 200*time.Millisecond)
		} else {
			var task emews.RemoteTask
			var ok bool
			task, ok, err = cl.Pop(taskType, 200*time.Millisecond)
			if err == nil && ok {
				tasks = []emews.RemoteTask{task}
			}
		}
		if err != nil {
			drop()
			if !pause(10 * time.Millisecond) {
				return
			}
			continue
		}
		if len(tasks) == 0 {
			continue
		}
		// The whole lease is observed up front: later invariants reason
		// about pop order per task, and a task can appear at most once per
		// lease, so recording at receipt preserves the epoch ordering the
		// single-op path had.
		for _, task := range tasks {
			p.h.tracker.popped(task.ID, task.Epoch)
		}
		fins := make([]emews.FinishOp, 0, len(tasks))
		kinds := make([]string, 0, len(tasks))
		for _, task := range tasks {
			var spec payloadSpec
			if err := json.Unmarshal([]byte(task.Payload), &spec); err != nil {
				// Not a plan task; should never happen. Fail it so it terminates.
				spec = payloadSpec{Index: -1, FailN: failAlways}
			}
			// Simulated model work. A pool crash abandons the claim (and the
			// rest of the lease) mid-task — the point of the fault.
			select {
			case <-time.After(time.Duration(spec.WorkUS) * time.Microsecond):
			case <-p.hardStop:
				return
			}
			if spec.FailN >= failAlways || task.Epoch <= int64(spec.FailN) {
				fins = append(fins, emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Failed: true,
					ErrMsg: fmt.Sprintf("injected failure at epoch %d", task.Epoch)})
				kinds = append(kinds, "fail")
			} else {
				fins = append(fins, emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: submitResult(spec.Index)})
				kinds = append(kinds, "complete")
			}
		}
		var dropConn bool
		if p.h.cfg.PopBatch > 1 {
			errs, berr := cl.FinishBatch(fins)
			if berr != nil {
				// The exchange failed wholesale; every resolution is unknown
				// and the server's connection cleanup requeues the claims.
				for i, fin := range fins {
					p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], berr)
				}
				dropConn = errors.Is(berr, emews.ErrTransport)
			} else {
				for i, fin := range fins {
					p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], errs[i])
				}
			}
		} else {
			for i, fin := range fins {
				var rerr error
				if fin.Failed {
					rerr = cl.Fail(fin.TaskID, fin.Epoch, fin.ErrMsg)
				} else {
					rerr = cl.Complete(fin.TaskID, fin.Epoch, fin.Result)
				}
				p.h.tracker.resolved(fin.TaskID, fin.Epoch, kinds[i], rerr)
				if rerr != nil && errors.Is(rerr, emews.ErrTransport) {
					dropConn = true
				}
			}
		}
		if dropConn {
			drop()
		}
	}
}

// ---- drivers ----

// submitDriver walks the submit plan, pacing open-loop by the event's
// AtMS offset or closed-loop by the in-flight window, and guarantees each
// event lands exactly once (at-least-once send + presence check on the
// ambiguous error paths).
func (h *harness) submitDriver() {
	var cl taskConn
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventSubmit {
			continue
		}
		if h.fatalErr() != nil {
			return
		}
		if h.cfg.Closed {
			for {
				st := h.statsAll()
				if st.Queued+st.Running < h.cfg.Window {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
		} else {
			sleepUntil(h.start.Add(time.Duration(ev.AtMS) * time.Millisecond))
		}
		cl = h.ensureSubmitted(cl, ev)
	}
}

// ensureSubmitted submits ev, reconciling ambiguity: when the send fails
// the task may or may not have been applied, so the driver checks the
// live ledger for the event's plan index before re-sending. The returned
// client replaces the caller's (it may have been redialed or dropped).
func (h *harness) ensureSubmitted(cl taskConn, ev *PlanEvent) taskConn {
	for attempt := 0; ; attempt++ {
		if h.fatalErr() != nil {
			return cl
		}
		if attempt > 0 {
			atomic.AddInt64(&h.submitRetries, 1)
			if _, found := h.tasksByPlanIndex()[ev.Index]; found {
				return cl // the ambiguous send was applied after all
			}
			time.Sleep(20 * time.Millisecond)
		}
		if cl == nil {
			c, err := h.dialDriver()
			if err != nil {
				continue
			}
			cl = c
		}
		_, err := cl.SubmitRetry(ev.TaskType, ev.Priority, ev.Payload, ev.MaxAttempts)
		if err == nil {
			return cl
		}
		cl.Close()
		cl = nil
	}
}

// tasksByPlanIndex scans the live ledger (all shards) and maps plan
// index -> task IDs.
func (h *harness) tasksByPlanIndex() map[int][]int64 {
	out := map[int][]int64{}
	for _, t := range h.dumpAll() {
		var spec payloadSpec
		if err := json.Unmarshal([]byte(t.Payload), &spec); err == nil {
			out[spec.Index] = append(out[spec.Index], t.ID)
		}
	}
	return out
}

// ingestDriver walks the ingest plan, appending data versions over the
// real HTTP API with presence-check reconciliation (a version whose POST
// response was lost must not be appended twice).
func (h *harness) ingestDriver() {
	hc := &http.Client{Timeout: 5 * time.Second}
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventIngest {
			continue
		}
		if h.fatalErr() != nil {
			return
		}
		sleepUntil(h.start.Add(time.Duration(ev.AtMS) * time.Millisecond))
		h.ensureIngested(hc, ev)
	}
}

func (h *harness) ensureIngested(hc *http.Client, ev *PlanEvent) {
	uuid := h.streams[ev.Stream]
	body, err := json.Marshal(aero.Version{
		Checksum:   ev.Checksum,
		Size:       1 + ev.Index,
		Endpoint:   "loadgen",
		Collection: ev.Stream,
		Path:       "/" + ev.Checksum,
	})
	if err != nil {
		h.fail(err)
		return
	}
	for attempt := 0; ; attempt++ {
		if h.fatalErr() != nil {
			return
		}
		if attempt > 0 {
			atomic.AddInt64(&h.ingestRetries, 1)
			time.Sleep(20 * time.Millisecond)
		}
		if h.ingestPresent(ev) {
			return
		}
		resp, err := hc.Post("http://"+h.currentHTTPAddr()+"/data/"+uuid+"/versions",
			"application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			return
		}
	}
}

func (h *harness) ingestPresent(ev *PlanEvent) bool {
	rec, err := h.currentStore().GetData(h.streams[ev.Stream])
	if err != nil {
		return false
	}
	for _, v := range rec.Versions {
		if v.Checksum == ev.Checksum {
			return true
		}
	}
	return false
}

// scrapeLoop polls /metrics like an external monitoring agent would,
// proving the observability surface stays consistent under chaos: scrape
// failures during fault windows are fine, malformed payloads never are.
func (h *harness) scrapeLoop(ctx context.Context) {
	hc := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(h.cfg.ScrapeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		resp, err := hc.Get("http://" + h.currentHTTPAddr() + "/metrics")
		if err != nil {
			atomic.AddInt64(&h.scrapeFailed, 1)
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddInt64(&h.scrapeFailed, 1)
			continue
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			atomic.AddInt64(&h.scrapeBad, 1)
			continue
		}
		atomic.AddInt64(&h.scrapeOK, 1)
	}
}

// faultRunner fires the fault schedule at its absolute offsets. Windowed
// faults (refuse, latency) hold the runner for their window, so
// overlapping windows are not supported — schedules are sequential.
func (h *harness) faultRunner() {
	for _, f := range h.cfg.Faults {
		if h.fatalErr() != nil {
			return
		}
		sleepUntil(h.start.Add(f.At))
		h.faultMu.Lock()
		h.faultCounts[string(f.Kind)]++
		h.faultMu.Unlock()
		h.cfg.Logf("loadgen: fault %s", f)
		switch f.Kind {
		case FaultKill:
			for _, p := range h.proxies() {
				p.KillActive()
			}
		case FaultRefuse:
			for _, p := range h.proxies() {
				p.SetRefuse(true)
			}
			time.Sleep(f.Value)
			for _, p := range h.proxies() {
				p.SetRefuse(false)
			}
		case FaultLatency:
			for _, p := range h.proxies() {
				p.SetLatency(f.Value)
			}
			time.Sleep(f.Dur)
			for _, p := range h.proxies() {
				p.SetLatency(0)
			}
		case FaultPoolCrash:
			h.currentPool().crash()
			time.Sleep(f.Value)
			h.setPool(h.startPool())
		case FaultCrash:
			h.fail(h.crash(false))
		case FaultTornCrash:
			h.fail(h.crash(true))
		case FaultShardFailover:
			h.fail(h.failover(f.Shard))
		}
	}
}

// sweepSubmits re-submits plan events whose tasks are missing from the
// ledger. Only a torn-tail crash can eat an acknowledged submit, and a
// real ME process keeps its own intent log for exactly this
// reconciliation.
func (h *harness) sweepSubmits() {
	present := h.tasksByPlanIndex()
	var cl taskConn
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventSubmit {
			continue
		}
		if _, ok := present[ev.Index]; ok {
			continue
		}
		h.cfg.Logf("loadgen: sweep resubmit of plan event %d (lost to a torn crash)", ev.Index)
		cl = h.ensureSubmitted(cl, ev)
	}
	if cl != nil {
		cl.Close()
	}
}

// sweepIngests re-appends versions missing from the store.
func (h *harness) sweepIngests() {
	hc := &http.Client{Timeout: 5 * time.Second}
	for i := range h.plan {
		ev := &h.plan[i]
		if ev.Kind != EventIngest || h.ingestPresent(ev) {
			continue
		}
		h.ensureIngested(hc, ev)
	}
}

// drain waits for the queue to empty: every submitted task terminal,
// nothing running.
func (h *harness) drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := h.statsAll()
		if st.Queued == 0 && st.Running == 0 {
			return
		}
		if h.fatalErr() != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// Run executes one full harness run: boot the stack, drive the plan
// through the chaos schedule, drain, audit, and report. Infrastructure
// failures (not invariant violations) are returned as errors; invariant
// violations make Report.Pass false.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := validateFaults(cfg.Faults, cfg.Shards); err != nil {
		return nil, err
	}
	plan := BuildPlan(cfg)

	dataDir := cfg.DataDir
	ownDir := false
	if dataDir == "" {
		var err error
		dataDir, err = os.MkdirTemp("", "osprey-loadgen-*")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}
	h := &harness{
		cfg:         cfg,
		plan:        plan,
		tracker:     newTracker(),
		dirTasks:    filepath.Join(dataDir, "tasks"),
		dirAero:     filepath.Join(dataDir, "aero"),
		streams:     map[string]string{},
		faultCounts: map[string]int{},
	}
	for _, d := range []string{h.dirTasks, h.dirAero} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}

	preObs := obs.Default().Snapshot()
	if cfg.Shards > 1 {
		if err := h.bootAero(); err != nil {
			return nil, err
		}
		if err := h.bootShards(); err != nil {
			h.httpSrv.Close()
			h.logAero.Close()
			return nil, err
		}
		defer func() {
			for _, p := range h.proxies() {
				p.Close()
			}
		}()
	} else {
		if err := h.boot(); err != nil {
			return nil, err
		}
		proxy, err := chaos.NewProxy(h.taskAddr)
		if err != nil {
			return nil, err
		}
		h.proxy = proxy
		defer proxy.Close()
	}
	for i := 0; i < cfg.IngestStreams; i++ {
		name := StreamName(i)
		rec, err := h.currentStore().CreateData(name, "loadgen://"+name)
		if err != nil {
			return nil, err
		}
		h.streams[name] = rec.UUID
	}

	h.start = time.Now()
	h.setPool(h.startPool())
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	go h.scrapeLoop(scrapeCtx)

	var wg sync.WaitGroup
	for _, f := range []func(){h.submitDriver, h.ingestDriver, h.faultRunner} {
		f := f
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
	}
	wg.Wait()

	if err := h.fatalErr(); err != nil {
		stopScrape()
		h.currentPool().crash()
		return nil, err
	}

	// Post-plan reconciliation, then heal the network and drain.
	h.sweepSubmits()
	h.sweepIngests()
	for _, p := range h.proxies() {
		p.SetRefuse(false)
		p.SetLatency(0)
		p.SetAcceptDelay(0)
	}
	h.drain(cfg.DrainTimeout)
	elapsed := time.Since(h.start)
	stopScrape()
	h.currentPool().stop()

	// Graceful teardown: capture final state, then close the stack and
	// audit the durable history.
	dump := h.dumpAll()
	stats := h.statsAll()
	streams := map[string]*aero.DataRecord{}
	for name, uuid := range h.streams {
		rec, err := h.currentStore().GetData(uuid)
		if err != nil {
			return nil, err
		}
		streams[name] = rec
	}
	postObs := obs.Default().Snapshot()

	var audit *emews.WALAudit
	var shAudit *emews.ShardsAudit
	if h.sharded() {
		if err := h.closeShards(); err != nil {
			return nil, err
		}
		h.httpSrv.Close()
		if err := h.logAero.Close(); err != nil {
			return nil, err
		}
		sa, err := emews.AuditShards(h.auditDirs())
		if err != nil {
			return nil, err
		}
		shAudit, audit = sa, sa.Combined
	} else {
		h.reapStop()
		h.taskSrv.Close()
		h.httpSrv.Close()
		if err := h.logTasks.Close(); err != nil {
			return nil, err
		}
		if err := h.logAero.Close(); err != nil {
			return nil, err
		}
		a, err := emews.AuditWAL(h.dirTasks)
		if err != nil {
			return nil, err
		}
		audit = a
	}

	report := h.buildReport(plan, dump, stats, streams, audit, shAudit, postObs.Delta(preObs), elapsed)
	if ownDir {
		if report.Pass {
			os.RemoveAll(dataDir)
		} else {
			report.DataDir = dataDir // keep the evidence
		}
	}
	return report, nil
}
