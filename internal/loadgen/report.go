package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"osprey/internal/aero"
	"osprey/internal/chaos"
	"osprey/internal/emews"
	"osprey/internal/obs"
)

// Invariant is one end-of-run check: a property that must hold over the
// final ledger, the harness-side tracker, or the durable WAL history.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Totals are the run's scalar counts.
type Totals struct {
	PlanSubmits int `json:"plan_submits"`
	PlanIngests int `json:"plan_ingests"`

	Submitted int `json:"submitted"`
	Complete  int `json:"complete"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`

	DuplicateTasks int `json:"duplicate_tasks"` // extra tasks for an already-covered plan index

	Crashes     int `json:"crashes"`
	TornCrashes int `json:"torn_crashes"`

	SubmitRetries int64 `json:"submit_retries"`
	IngestRetries int64 `json:"ingest_retries"`

	StaleResolutions      int64 `json:"stale_resolutions"`
	UnresolvedResolutions int64 `json:"unresolved_resolutions"`

	ScrapesOK     int64 `json:"scrapes_ok"`
	ScrapesFailed int64 `json:"scrapes_failed"`
	ScrapesBad    int64 `json:"scrapes_bad"`
}

// TenantReport is one tenant's slice of a multi-tenant run: what its
// ingest plan demanded, what the quota layer admitted and pushed back,
// and what its run-long streaming watch subscription accounted for.
type TenantReport struct {
	PlanIngests     int   `json:"plan_ingests"`
	Admitted        int64 `json:"admitted"`
	Throttled       int64 `json:"throttled"`
	WatchDelivered  int64 `json:"watch_delivered"`
	WatchDropped    int64 `json:"watch_dropped"`
	WatchDuplicates int64 `json:"watch_duplicates"`
}

// Workload identifies the deterministic plan: same seed, same shape →
// same Digest and the same Events, byte for byte.
type Workload struct {
	Digest string      `json:"digest"`
	Events []PlanEvent `json:"events"`
}

// Report is the JSON run report emitted by Run/cmd/osprey-loadgen.
type Report struct {
	Seed            uint64  `json:"seed"`
	Mode            string  `json:"mode"` // "open" | "closed"
	DurationSeconds float64 `json:"duration_seconds"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"` // includes drain
	Rate            float64 `json:"rate"`
	Workers         int     `json:"workers"`
	Shards          int     `json:"shards"`              // task-substrate shard count (1 = single stack)
	Failovers       int     `json:"failovers,omitempty"` // shard primaries killed and replaced by promoted followers

	Faults      []string       `json:"faults"`
	FaultCounts map[string]int `json:"fault_counts"`

	Workload Workload `json:"workload"`
	Totals   Totals   `json:"totals"`

	// Multi-tenant runs only: per-tenant admission/watch accounting and
	// the live isolation-probe tallies.
	TenantCount     int                      `json:"tenant_count,omitempty"`
	Tenants         map[string]*TenantReport `json:"tenants,omitempty"`
	ProbeChecks     int64                    `json:"probe_checks,omitempty"`
	ProbeViolations int64                    `json:"probe_violations,omitempty"`

	ThroughputPerSec float64 `json:"throughput_per_sec"` // terminal tasks / elapsed

	Proxy chaos.ProxyStats `json:"proxy"`

	// Obs is the windowed observability delta for the run: counters and
	// histogram buckets accumulated between run start and drain, with
	// latency quantiles re-derived from the window (see obs.Snapshot.Delta).
	Obs obs.Snapshot `json:"obs"`

	WALAudit *emews.WALAudit `json:"wal_audit"`

	// ShardsAudit is the per-shard + cross-shard durable-history audit of
	// a sharded run; WALAudit then aliases its Combined view so the
	// invariants and tooling read one ledger either way.
	ShardsAudit *emews.ShardsAudit `json:"shards_audit,omitempty"`

	Invariants []Invariant `json:"invariants"`
	Pass       bool        `json:"pass"`

	// DataDir is set when a failing run kept its temp data directory.
	DataDir string `json:"data_dir,omitempty"`
}

// WriteJSON writes the indented report to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FailedInvariants returns the names of the checks that did not hold.
func (r *Report) FailedInvariants() []string {
	var out []string
	for _, inv := range r.Invariants {
		if !inv.OK {
			out = append(out, inv.Name+": "+inv.Detail)
		}
	}
	return out
}

func (h *harness) buildReport(plan []PlanEvent, dump []emews.Task, stats emews.Stats,
	streams map[string]*aero.DataRecord, audit *emews.WALAudit, shAudit *emews.ShardsAudit,
	delta obs.Snapshot, elapsed time.Duration) *Report {

	r := &Report{
		Seed:            h.cfg.Seed,
		Mode:            "open",
		DurationSeconds: h.cfg.Duration.Seconds(),
		ElapsedSeconds:  elapsed.Seconds(),
		Rate:            h.cfg.Rate,
		Workers:         h.cfg.Workers,
		Shards:          h.cfg.Shards,
		Failovers:       h.failovers,
		FaultCounts:     h.faultCounts,
		Workload:        Workload{Digest: PlanDigest(plan), Events: plan},
		Proxy:           h.proxyStats(),
		Obs:             delta,
		WALAudit:        audit,
		ShardsAudit:     shAudit,
	}
	if h.cfg.Closed {
		r.Mode = "closed"
	}
	for _, f := range h.cfg.Faults {
		r.Faults = append(r.Faults, f.String())
	}

	t := &r.Totals
	t.Submitted = stats.Submitted
	t.Complete = stats.Complete
	t.Failed = stats.Failed
	t.Canceled = stats.Canceled
	t.Crashes = h.crashes
	t.TornCrashes = h.tornCrashes
	t.SubmitRetries = atomic.LoadInt64(&h.submitRetries)
	t.IngestRetries = atomic.LoadInt64(&h.ingestRetries)
	t.StaleResolutions = atomic.LoadInt64(&h.tracker.stale)
	t.UnresolvedResolutions = atomic.LoadInt64(&h.tracker.unresolved)
	t.ScrapesOK = atomic.LoadInt64(&h.scrapeOK)
	t.ScrapesFailed = atomic.LoadInt64(&h.scrapeFailed)
	t.ScrapesBad = atomic.LoadInt64(&h.scrapeBad)
	for _, ev := range plan {
		switch ev.Kind {
		case EventSubmit:
			t.PlanSubmits++
		case EventIngest:
			t.PlanIngests++
		}
	}
	terminal := stats.Complete + stats.Failed + stats.Canceled
	if elapsed > 0 {
		r.ThroughputPerSec = float64(terminal) / elapsed.Seconds()
	}

	if h.cfg.Tenants > 0 {
		r.TenantCount = h.cfg.Tenants
		r.Tenants = map[string]*TenantReport{}
		planned := h.plannedIngests()
		h.tmu.Lock()
		for i := 0; i < h.cfg.Tenants; i++ {
			tn := TenantName(i)
			tr := &TenantReport{PlanIngests: planned[tn]}
			if s := h.tstats[tn]; s != nil {
				tr.Admitted, tr.Throttled = s.admitted, s.throttled
			}
			r.Tenants[tn] = tr
		}
		h.tmu.Unlock()
		for _, w := range h.watchers {
			tr := r.Tenants[w.tenant]
			w.mu.Lock()
			tr.WatchDelivered, tr.WatchDropped = w.events, w.dropped
			for _, n := range w.delivered {
				if n > 1 {
					tr.WatchDuplicates += int64(n - 1)
				}
			}
			w.mu.Unlock()
		}
		r.ProbeChecks = atomic.LoadInt64(&h.probeChecks)
		r.ProbeViolations = atomic.LoadInt64(&h.probeViolations)
	}

	r.Invariants = h.checkInvariants(plan, dump, stats, streams, audit)
	r.Pass = true
	for _, inv := range r.Invariants {
		if !inv.OK {
			r.Pass = false
		}
	}
	for i, ids := range h.tasksIndexFromDump(dump) {
		_ = i
		if len(ids) > 1 {
			t.DuplicateTasks += len(ids) - 1
		}
	}
	return r
}

func (h *harness) tasksIndexFromDump(dump []emews.Task) map[int][]int64 {
	out := map[int][]int64{}
	for _, task := range dump {
		var spec payloadSpec
		if err := json.Unmarshal([]byte(task.Payload), &spec); err == nil {
			out[spec.Index] = append(out[spec.Index], task.ID)
		}
	}
	return out
}

// checkInvariants evaluates every end-of-run property. Checks marked
// "(clean-crash only)" cannot hold across a torn-tail crash — chopping
// the WAL rewinds the epoch clock, so pre-chop observations legally
// collide with post-recovery ones — and are skipped when the schedule
// tore the log; the WAL audit of the surviving history is unconditional.
func (h *harness) checkInvariants(plan []PlanEvent, dump []emews.Task, stats emews.Stats,
	streams map[string]*aero.DataRecord, audit *emews.WALAudit) []Invariant {

	var invs []Invariant
	add := func(name string, ok bool, format string, args ...any) {
		invs = append(invs, Invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}
	skip := func(name, why string) {
		invs = append(invs, Invariant{Name: name, OK: true, Detail: "skipped: " + why})
	}
	torn := h.tornCrashes > 0

	// 1. Drained: nothing queued or running after the drain window.
	add("drained", stats.Queued == 0 && stats.Running == 0,
		"queued=%d running=%d", stats.Queued, stats.Running)

	// 2. Ledger balance: submitted = queued+running+complete+failed+canceled,
	// and the per-task dump recounts to the same stats (no task lost
	// between the counters and the ledger).
	sum := stats.Queued + stats.Running + stats.Complete + stats.Failed + stats.Canceled
	var rec emews.Stats
	for _, task := range dump {
		switch task.Status {
		case emews.StatusQueued:
			rec.Queued++
		case emews.StatusRunning:
			rec.Running++
		case emews.StatusComplete:
			rec.Complete++
		case emews.StatusFailed:
			rec.Failed++
		case emews.StatusCanceled:
			rec.Canceled++
		}
	}
	rec.Submitted = len(dump)
	add("ledger-balance",
		stats.Submitted == sum && rec == stats,
		"stats=%+v sum=%d recount=%+v", stats, sum, rec)

	// 3. No cancellations: the harness never closes the DB mid-run, so a
	// canceled task would mean a lifecycle leak.
	add("no-cancellations", stats.Canceled == 0, "canceled=%d", stats.Canceled)

	// 4. Plan coverage: every planned submit exists in the ledger, and
	// every ledger task came from the plan.
	byIndex := h.tasksIndexFromDump(dump)
	missing, unplanned := 0, 0
	for _, ev := range plan {
		if ev.Kind != EventSubmit {
			continue
		}
		if len(byIndex[ev.Index]) == 0 {
			missing++
		}
	}
	planSubmits := 0
	for _, ev := range plan {
		if ev.Kind == EventSubmit {
			planSubmits++
		}
	}
	for idx := range byIndex {
		if idx < 0 || idx >= planSubmits {
			unplanned++
		}
	}
	add("plan-coverage", missing == 0 && unplanned == 0,
		"missing=%d unplanned=%d indexes=%d", missing, unplanned, len(byIndex))

	// 5. Intended outcomes: all tasks terminal; a task planned to succeed
	// completed with the right result, a task planned to always fail
	// failed terminally.
	badOutcome := 0
	var firstBad string
	for _, task := range dump {
		var spec payloadSpec
		if json.Unmarshal([]byte(task.Payload), &spec) != nil {
			continue // flagged by plan-coverage
		}
		ok := false
		switch task.Status {
		case emews.StatusComplete:
			ok = expectedOutcome(spec) && task.Result == submitResult(spec.Index)
		case emews.StatusFailed:
			ok = !expectedOutcome(spec)
		}
		if !ok {
			badOutcome++
			if firstBad == "" {
				firstBad = fmt.Sprintf("task %d (plan %d) status=%v result=%q fail_n=%d",
					task.ID, spec.Index, task.Status, task.Result, spec.FailN)
			}
		}
	}
	add("intended-outcomes", badOutcome == 0, "bad=%d %s", badOutcome, firstBad)

	// 6. Epoch fencing, DB side: every task's epoch is at least its pop
	// count (requeues only ever push the fence forward).
	badEpoch := 0
	for _, task := range dump {
		if task.Epoch < int64(task.Attempts) {
			badEpoch++
		}
	}
	add("epoch-covers-attempts", badEpoch == 0, "violations=%d", badEpoch)

	// 7. Epoch fencing, worker side (clean-crash only): the epochs each
	// worker observed for a task are strictly increasing — no attempt was
	// ever handed out twice.
	if torn {
		skip("epochs-strictly-increase", "torn-tail crash rewinds the epoch clock")
	} else {
		bad := 0
		h.tracker.mu.Lock()
		for _, epochs := range h.tracker.pops {
			for i := 1; i < len(epochs); i++ {
				if epochs[i] <= epochs[i-1] {
					bad++
				}
			}
		}
		h.tracker.mu.Unlock()
		add("epochs-strictly-increase", bad == 0, "violations=%d", bad)
	}

	// 8. No double accept (clean-crash only): at most one successful
	// completion was accepted per task. Accepted failures requeue and are
	// legal up to the retry budget; a second accepted completion means a
	// finished task was re-executed, which only a torn-away durable finish
	// record can cause.
	if torn {
		skip("no-double-accept", "torn-tail crash can lose a durable finish")
	} else {
		multi := 0
		h.tracker.mu.Lock()
		for _, byEpoch := range h.tracker.accepted {
			completes := 0
			for _, kind := range byEpoch {
				if kind == "complete" {
					completes++
				}
			}
			if completes > 1 {
				multi++
			}
		}
		h.tracker.mu.Unlock()
		add("no-double-accept", multi == 0, "tasks with >1 accepted completion: %d", multi)
	}

	// 9. Durable history: the strict WAL replay found no lifecycle
	// violations — unconditional, even across torn crashes, because
	// truncation only ever removes a suffix.
	add("wal-audit-clean", audit.Ok(), "violations=%d %s",
		len(audit.Violations), strings.Join(firstN(audit.Violations, 3), "; "))

	// 10. Ingest exactly-once: each stream's version checksums are exactly
	// the planned set, no duplicates, with contiguous version numbers.
	ingestBad := ""
	want := map[string][]string{}
	for _, ev := range plan {
		if ev.Kind == EventIngest {
			want[ev.Stream] = append(want[ev.Stream], ev.Checksum)
		}
	}
	for stream, checksums := range want {
		rec := streams[stream]
		if rec == nil {
			ingestBad = "stream " + stream + " missing"
			break
		}
		got := map[string]int{}
		for i, v := range rec.Versions {
			got[v.Checksum]++
			if v.Num != i+1 {
				ingestBad = fmt.Sprintf("stream %s version %d has num %d", stream, i+1, v.Num)
			}
		}
		if len(rec.Versions) != len(checksums) {
			ingestBad = fmt.Sprintf("stream %s has %d versions, want %d", stream, len(rec.Versions), len(checksums))
		}
		for _, c := range checksums {
			if got[c] != 1 {
				ingestBad = fmt.Sprintf("stream %s checksum %s appears %d times", stream, c, got[c])
			}
		}
	}
	add("ingest-exactly-once", ingestBad == "", "%s", ingestBad)

	// 11. Observability surface: scrapes succeeded at least once and
	// never returned an unparsable payload.
	add("scrapes-parse",
		atomic.LoadInt64(&h.scrapeOK) >= 1 && atomic.LoadInt64(&h.scrapeBad) == 0,
		"ok=%d failed=%d bad=%d",
		atomic.LoadInt64(&h.scrapeOK), atomic.LoadInt64(&h.scrapeFailed), atomic.LoadInt64(&h.scrapeBad))

	// 12-15. Multi-tenant properties; vacuous in single-tenant mode.
	if h.cfg.Tenants == 0 {
		for _, name := range []string{"tenant-isolation", "tenant-quota-enforced",
			"tenant-ledger-balance", "watch-delivery"} {
			skip(name, "single-tenant run")
		}
		return invs
	}
	planned := h.plannedIngests()

	// 12. Isolation: every live probe saw the right refusal (404 for a
	// cross-tenant read with a valid neighbor token, 401 unauthenticated),
	// and each tenant's final listing holds exactly its own streams.
	isoBad := ""
	if v := atomic.LoadInt64(&h.probeViolations); v > 0 {
		first, _ := h.probeFirstBad.Load().(string)
		isoBad = fmt.Sprintf("%d/%d probes violated isolation (%s)",
			v, atomic.LoadInt64(&h.probeChecks), first)
	} else if atomic.LoadInt64(&h.probeChecks) == 0 {
		isoBad = "no isolation probes ran"
	}
	for i := 0; i < h.cfg.Tenants && isoBad == ""; i++ {
		tn := TenantName(i)
		recs, err := h.currentStore().Tenant(tn).ListData()
		if err != nil {
			isoBad = fmt.Sprintf("list %s: %v", tn, err)
			break
		}
		if len(recs) != h.cfg.IngestStreams {
			isoBad = fmt.Sprintf("%s lists %d records, want %d own streams", tn, len(recs), h.cfg.IngestStreams)
			break
		}
		for _, rec := range recs {
			if h.streamTenant[rec.Name] != tn {
				isoBad = fmt.Sprintf("%s lists foreign record %s", tn, rec.UUID)
				break
			}
		}
	}
	add("tenant-isolation", isoBad == "", "checks=%d %s", atomic.LoadInt64(&h.probeChecks), isoBad)

	// 13. Quota conformance: no tenant was admitted faster than its
	// token bucket allows (burst + rate×window, with half a second of
	// slack for clock edges), and the noisy neighbor — whenever its plan
	// actually exceeds the bucket — was throttled at least once while
	// the quiet tenants' demand stayed under quota.
	quotaBad := ""
	h.tmu.Lock()
	for i := 0; i < h.cfg.Tenants; i++ {
		tn := TenantName(i)
		s := h.tstats[tn]
		if s == nil || s.admitted == 0 {
			quotaBad = fmt.Sprintf("tenant %s had nothing admitted", tn)
			continue
		}
		window := s.lastAdmit.Sub(h.start).Seconds()
		if window < 0 {
			window = 0
		}
		bound := h.cfg.TenantBurst + h.cfg.TenantQuota*(window+0.5)
		if float64(s.admitted) > bound {
			quotaBad = fmt.Sprintf("tenant %s admitted %d in %.2fs, quota bound %.1f", tn, s.admitted, window, bound)
		}
	}
	noisyName := TenantName(h.cfg.NoisyTenant)
	noisyDemand := float64(planned[noisyName])
	noisyCapacity := h.cfg.TenantBurst + h.cfg.TenantQuota*h.cfg.Duration.Seconds()
	if s := h.tstats[noisyName]; noisyDemand > noisyCapacity && (s == nil || s.throttled == 0) {
		quotaBad = fmt.Sprintf("noisy tenant planned %d > capacity %.0f but saw no 429", planned[noisyName], noisyCapacity)
	}
	h.tmu.Unlock()
	add("tenant-quota-enforced", quotaBad == "", "%s", quotaBad)

	// 14. Per-tenant ledger balance: the versions that landed in each
	// tenant's streams are exactly the tenant's planned ingests —
	// throttling delays events, it never sheds or double-applies them.
	ledBad := ""
	gotVersions := map[string]int{}
	for name, rec := range streams {
		gotVersions[h.streamTenant[name]] += len(rec.Versions)
	}
	for tn, want := range planned {
		if gotVersions[tn] != want {
			ledBad = fmt.Sprintf("tenant %s has %d versions, plan says %d", tn, gotVersions[tn], want)
		}
	}
	add("tenant-ledger-balance", ledBad == "", "%s", ledBad)

	// 15. Watch delivery: each tenant's run-long streaming subscription
	// saw no event twice, its stream never died, and delivered + dropped
	// accounts for every version the tenant published.
	watchBad := ""
	for _, w := range h.watchers {
		w.mu.Lock()
		dups := 0
		for _, n := range w.delivered {
			if n > 1 {
				dups += n - 1
			}
		}
		events, dropped, readErr := w.events, w.dropped, w.readErr
		w.mu.Unlock()
		want := int64(planned[w.tenant])
		switch {
		case readErr != nil:
			watchBad = fmt.Sprintf("%s stream died: %v", w.tenant, readErr)
		case dups > 0:
			watchBad = fmt.Sprintf("%s saw %d duplicate deliveries", w.tenant, dups)
		case events+dropped != want:
			watchBad = fmt.Sprintf("%s delivered %d + dropped %d != published %d", w.tenant, events, dropped, want)
		}
	}
	add("watch-delivery", watchBad == "", "watchers=%d %s", len(h.watchers), watchBad)

	return invs
}

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
