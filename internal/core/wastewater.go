package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"osprey/internal/aero"
	"osprey/internal/parallel"
	"osprey/internal/rng"
	"osprey/internal/rt"
	"osprey/internal/wastewater"
)

// WastewaterConfig parameterizes the Figure 1 workflow.
type WastewaterConfig struct {
	// ScenarioDays is the full synthetic epidemic length (default 120).
	ScenarioDays int
	// StartDay is how much of the feed is visible at pipeline start
	// (default 60).
	StartDay int
	// Goldstein configures the per-plant estimator (iterations are the
	// knob that trades accuracy for speed).
	Goldstein rt.GoldsteinOptions
	// PollInterval, when nonzero, schedules automatic polling timers; the
	// default (0) leaves polling to explicit PollAll calls, which is what
	// simulations and tests want.
	PollInterval time.Duration
	// Seed drives the synthetic data generation.
	Seed uint64
}

// plantRig holds one plant's feed and flows.
type plantRig struct {
	plant     wastewater.Plant
	series    *wastewater.Series
	source    *wastewater.LiveSource
	ingestion *aero.IngestionFlow
	analysis  *aero.AnalysisFlow
}

// WastewaterPipeline is the assembled multi-source R(t) workflow: four
// ingestion flows, four Goldstein analysis flows on the batch tier, and one
// population-weighted aggregation flow on the login tier, all chained by
// AERO data-update triggers exactly as in Figure 1.
type WastewaterPipeline struct {
	Platform *Platform
	cfg      WastewaterConfig

	server   *http.Server
	listener net.Listener

	mu     sync.Mutex
	plants []*plantRig
	// Aggregate is the ensemble flow (TriggerAll over the four estimates).
	Aggregate *aero.AnalysisFlow
	truth     []float64
}

// estimateOutput is the serialized product of one plant's analysis flow —
// the stand-in for the paper's "binary R datatable objects".
type estimateOutput struct {
	Estimate *rt.Estimate `json:"estimate"`
}

// ensembleOutput is the aggregate flow's product.
type ensembleOutput struct {
	Ensemble *rt.EnsembleEstimate `json:"ensemble"`
}

// NewWastewaterPipeline builds and registers the full workflow against the
// platform. It starts a real local HTTP server for the simulated
// surveillance feeds.
func NewWastewaterPipeline(p *Platform, cfg WastewaterConfig) (*WastewaterPipeline, error) {
	if cfg.ScenarioDays <= 0 {
		cfg.ScenarioDays = 120
	}
	if cfg.StartDay <= 0 {
		cfg.StartDay = 60
	}
	if cfg.StartDay > cfg.ScenarioDays {
		return nil, errors.New("core: StartDay beyond scenario end")
	}

	sc := wastewater.DefaultScenario(cfg.ScenarioDays)
	root := rng.New(cfg.Seed)
	wp := &WastewaterPipeline{Platform: p, cfg: cfg, truth: append([]float64(nil), sc.Rt...)}

	// One HTTP mux serves every plant's feed, as the IWSS portal would.
	mux := http.NewServeMux()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wp.listener = ln
	wp.server = &http.Server{Handler: mux}
	go wp.server.Serve(ln)
	baseURL := "http://" + ln.Addr().String()

	// The validation/transformation function: parse, run the data-quality
	// screen (drop assay failures and isolated spikes, flag gaps), and
	// re-emit the cleaned CSV with the audit report as comment lines so
	// the quality decision travels with the data.
	transformID, err := p.LoginCompute.RegisterFunction(p.Token.ID, "ww-validate",
		func(ctx context.Context, body []byte) ([]byte, error) {
			obs, err := wastewater.ParseCSV(strings.NewReader(string(body)))
			if err != nil {
				return nil, fmt.Errorf("validation failed: %w", err)
			}
			cleaned, report := wastewater.CleanObservations(obs, wastewater.QualityOptions{})
			var sb strings.Builder
			sb.WriteString("day,concentration\n")
			fmt.Fprintf(&sb, "# quality: input=%d kept=%d dropped=%d\n",
				report.Input, report.Kept, report.Dropped)
			for _, iss := range report.Issues {
				fmt.Fprintf(&sb, "# quality-issue: day=%d kind=%s %s\n", iss.Day, iss.Kind, iss.Detail)
			}
			for _, o := range cleaned {
				fmt.Fprintf(&sb, "%d,%.6g\n", o.Day, o.Concentration)
			}
			return []byte(sb.String()), nil
		})
	if err != nil {
		return nil, err
	}

	var estimateUUIDs []string
	for i, plant := range wastewater.ChicagoPlants() {
		series := wastewater.Generate(plant, sc, root.Split("plant/"+plant.Name))
		source := wastewater.NewLiveSource(series, cfg.StartDay)
		slug := plantSlug(plant.Name)
		mux.Handle("/"+slug+".csv", source)

		ing, err := p.AERO.RegisterIngestion(aero.IngestionSpec{
			Name:         slug,
			URL:          baseURL + "/" + slug + ".csv",
			PollInterval: cfg.PollInterval,
			Compute:      p.LoginCompute,
			TransformID:  transformID,
			Storage:      p.StorageTarget(),
		})
		if err != nil {
			wp.Close()
			return nil, err
		}

		// The R(t) analysis harness runs on the batch tier: this is the
		// "computationally expensive" step the paper queues through PBS.
		plantCopy := plant
		gopt := cfg.Goldstein
		gopt.Seed = cfg.Seed + uint64(1000+i)
		analyzeID, err := p.BatchCompute.RegisterFunction(p.Token.ID, "rt-"+slug,
			func(ctx context.Context, payload []byte) ([]byte, error) {
				return runGoldsteinHarness(payload, plantCopy, gopt)
			})
		if err != nil {
			wp.Close()
			return nil, err
		}
		an, err := p.AERO.RegisterAnalysis(aero.AnalysisSpec{
			Name:        "rt-" + slug,
			InputUUIDs:  []string{ing.OutputUUID},
			Policy:      aero.TriggerAny,
			Compute:     p.BatchCompute,
			AnalyzeID:   analyzeID,
			OutputNames: []string{"table", "estimate", "plot"},
			Storage:     p.StorageTarget(),
		})
		if err != nil {
			wp.Close()
			return nil, err
		}
		estimateUUIDs = append(estimateUUIDs, an.OutputUUIDs[1])
		wp.plants = append(wp.plants, &plantRig{
			plant: plant, series: series, source: source,
			ingestion: ing, analysis: an,
		})
	}

	// Aggregate flow: population-weighted ensemble, triggered only when
	// all four estimates have updated, running on the cheap login tier.
	aggID, err := p.LoginCompute.RegisterFunction(p.Token.ID, "rt-aggregate", runEnsembleHarness)
	if err != nil {
		wp.Close()
		return nil, err
	}
	agg, err := p.AERO.RegisterAnalysis(aero.AnalysisSpec{
		Name:        "rt-aggregate",
		InputUUIDs:  estimateUUIDs,
		Policy:      aero.TriggerAll,
		Compute:     p.LoginCompute,
		AnalyzeID:   aggID,
		OutputNames: []string{"ensemble", "plot"},
		Storage:     p.StorageTarget(),
	})
	if err != nil {
		wp.Close()
		return nil, err
	}
	wp.Aggregate = agg
	return wp, nil
}

func plantSlug(name string) string {
	s := strings.ToLower(name)
	s = strings.ReplaceAll(s, "'", "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// runGoldsteinHarness is the analysis function: CSV in, three named
// outputs (tabular summary, full estimate object, plot) out — the Go
// equivalent of the paper's Python harness wrapping Julia estimation and R
// plotting.
func runGoldsteinHarness(payload []byte, plant wastewater.Plant, gopt rt.GoldsteinOptions) ([]byte, error) {
	var req aero.AnalysisRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	if len(req.Inputs) != 1 {
		return nil, fmt.Errorf("rt harness: want 1 input, got %d", len(req.Inputs))
	}
	obs, err := wastewater.ParseCSV(strings.NewReader(string(req.Inputs[0].Data)))
	if err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, errors.New("rt harness: empty observation set")
	}
	days := obs[len(obs)-1].Day + 1
	est, err := rt.EstimateGoldstein(obs, plant, days, gopt)
	if err != nil {
		return nil, err
	}

	var table strings.Builder
	table.WriteString("day,median,lower,upper\n")
	for d := range est.Days {
		fmt.Fprintf(&table, "%d,%.4f,%.4f,%.4f\n", d, est.Median[d], est.Lower[d], est.Upper[d])
	}
	estJSON, err := json.Marshal(estimateOutput{Estimate: est})
	if err != nil {
		return nil, err
	}
	return aero.EncodeOutputs(map[string][]byte{
		"table":    []byte(table.String()),
		"estimate": estJSON,
		"plot":     []byte(renderEstimatePlot(plant.Name, est)),
	})
}

// runEnsembleHarness aggregates the four plant estimates into the
// population-weighted ensemble (Figure 2, bottom panel).
func runEnsembleHarness(_ context.Context, payload []byte) ([]byte, error) {
	var req aero.AnalysisRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	var ests []*rt.Estimate
	for _, in := range req.Inputs {
		var out estimateOutput
		if err := json.Unmarshal(in.Data, &out); err != nil {
			return nil, fmt.Errorf("aggregate: decode input %s: %w", in.UUID, err)
		}
		ests = append(ests, out.Estimate)
	}
	ens, err := rt.EnsembleWeighted(ests, nil)
	if err != nil {
		return nil, err
	}
	ensJSON, err := json.Marshal(ensembleOutput{Ensemble: ens})
	if err != nil {
		return nil, err
	}
	return aero.EncodeOutputs(map[string][]byte{
		"ensemble": ensJSON,
		"plot":     []byte(renderEnsemblePlot(ens)),
	})
}

// PollAll polls every ingestion flow once and waits for all triggered
// analyses (including the aggregate) to finish — one simulated "daily"
// cycle of the automated workflow. It reports how many feeds had updates.
//
// The per-plant polls (fetch + validation transform) run concurrently
// across the worker pool; the triggered Goldstein analyses were already
// dispatched asynchronously by AERO and are joined by WaitIdle. Update
// counts and errors are reduced in plant order, so the reported result is
// independent of poll completion order.
func (wp *WastewaterPipeline) PollAll() (int, error) {
	ups := make([]bool, len(wp.plants))
	errs := make([]error, len(wp.plants))
	parallel.For(len(wp.plants), func(i int) {
		ups[i], errs[i] = wp.plants[i].ingestion.Poll()
	})
	updates := 0
	for i := range wp.plants {
		if errs[i] != nil {
			return updates, errs[i]
		}
		if ups[i] {
			updates++
		}
	}
	wp.Platform.AERO.WaitIdle()
	return updates, nil
}

// Advance moves every plant's feed forward n simulated days.
func (wp *WastewaterPipeline) Advance(days int) {
	for _, rig := range wp.plants {
		rig.source.Advance(days)
	}
}

// TruthRt returns the shared ground-truth R(t) of the scenario.
func (wp *WastewaterPipeline) TruthRt() []float64 {
	return append([]float64(nil), wp.truth...)
}

// PlantNames lists the configured plants in order.
func (wp *WastewaterPipeline) PlantNames() []string {
	var out []string
	for _, rig := range wp.plants {
		out = append(out, rig.plant.Name)
	}
	return out
}

// PlantFlow returns the ingestion and analysis flows for a plant.
func (wp *WastewaterPipeline) PlantFlow(name string) (*aero.IngestionFlow, *aero.AnalysisFlow, error) {
	for _, rig := range wp.plants {
		if rig.plant.Name == name {
			return rig.ingestion, rig.analysis, nil
		}
	}
	return nil, nil, fmt.Errorf("core: unknown plant %q", name)
}

// LatestEstimate fetches and decodes a plant's most recent R(t) estimate
// from storage.
func (wp *WastewaterPipeline) LatestEstimate(name string) (*rt.Estimate, error) {
	for _, rig := range wp.plants {
		if rig.plant.Name != name {
			continue
		}
		data, _, err := wp.Platform.AERO.FetchLatest(rig.analysis.OutputUUIDs[1], wp.Platform.Storage)
		if err != nil {
			return nil, err
		}
		var out estimateOutput
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, err
		}
		return out.Estimate, nil
	}
	return nil, fmt.Errorf("core: unknown plant %q", name)
}

// LatestEnsemble fetches and decodes the most recent aggregate estimate.
func (wp *WastewaterPipeline) LatestEnsemble() (*rt.EnsembleEstimate, error) {
	data, _, err := wp.Platform.AERO.FetchLatest(wp.Aggregate.OutputUUIDs[0], wp.Platform.Storage)
	if err != nil {
		return nil, err
	}
	var out ensembleOutput
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out.Ensemble, nil
}

// LatestPlots fetches the rendered per-plant and ensemble ASCII plots.
func (wp *WastewaterPipeline) LatestPlots() (map[string]string, error) {
	out := map[string]string{}
	for _, rig := range wp.plants {
		data, _, err := wp.Platform.AERO.FetchLatest(rig.analysis.OutputUUIDs[2], wp.Platform.Storage)
		if err != nil {
			return nil, err
		}
		out[rig.plant.Name] = string(data)
	}
	data, _, err := wp.Platform.AERO.FetchLatest(wp.Aggregate.OutputUUIDs[1], wp.Platform.Storage)
	if err != nil {
		return nil, err
	}
	out["ensemble"] = string(data)
	return out, nil
}

// Close stops the feed HTTP server.
func (wp *WastewaterPipeline) Close() {
	if wp.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = wp.server.Shutdown(ctx)
	}
}
