package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"osprey/internal/aero"
	"osprey/internal/emews"
	"osprey/internal/metarvm"
	"osprey/internal/rt"
)

// TestDistributedDeployment runs the platform in its fully distributed
// shape: the AERO metadata service behind a real HTTP server, and the
// EMEWS task database behind a real TCP server with remote workers — the
// deployment the paper describes, where the metadata service, the ME
// algorithm, and the worker pools live on different resources.
func TestDistributedDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	// Remote AERO metadata service.
	metaStore := aero.NewStore()
	metaSrv := httptest.NewServer(aero.NewServer(metaStore))
	defer metaSrv.Close()

	p, err := New(Config{
		Identity: "distributed",
		Nodes:    8,
		Meta:     aero.NewClient(metaSrv.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	// Use case 1 against the remote metadata service.
	wp, err := NewWastewaterPipeline(p, WastewaterConfig{
		ScenarioDays: 90, StartDay: 70,
		Goldstein: rt.GoldsteinOptions{Iterations: 100, BurnIn: 150},
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	if _, err := wp.PollAll(); err != nil {
		t.Fatal(err)
	}
	// The remote store holds the flow registrations and versions; the
	// data bytes live only on the storage endpoint.
	flows, err := metaStore.ListFlows()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 9 {
		t.Fatalf("remote metadata has %d flows, want 9", len(flows))
	}
	if _, err := wp.LatestEnsemble(); err != nil {
		t.Fatalf("ensemble missing in distributed mode: %v", err)
	}

	// Use case 2 with TCP workers: serve the task DB and attach a remote
	// pool instead of an in-process one.
	taskSrv, err := emews.Serve(p.TaskDB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taskSrv.Close()
	pool, err := emews.StartRemotePool(taskSrv.Addr(), "remote-model", 4,
		func(ctx context.Context, payload string) (string, error) {
			var task struct {
				X    []float64 `json:"x"`
				Seed uint64    `json:"seed"`
			}
			if err := json.Unmarshal([]byte(payload), &task); err != nil {
				return "", err
			}
			y, err := metarvm.EvaluateGSA(task.X, task.Seed)
			if err != nil {
				return "", err
			}
			out, _ := json.Marshal(map[string]float64{"y": y})
			return string(out), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	space := metarvm.GSAParameterSpace()
	var futures []*emews.Future
	for i := 0; i < 8; i++ {
		x := space.Scale([]float64{0.5, 0.5, 0.5, 0.5, 0.5})
		payload, _ := json.Marshal(map[string]any{"x": x, "seed": i + 1})
		f, err := p.TaskDB.Submit("remote-model", 0, string(payload))
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, f := range futures {
		if _, err := f.Result(ctx); err != nil {
			t.Fatalf("remote evaluation failed: %v", err)
		}
	}
	// The futures resolve when the server applies each completion; the
	// pool's counters tick when the worker sees the acknowledgement, so
	// give them a moment to converge.
	deadline := time.Now().Add(5 * time.Second)
	for {
		processed, failed := pool.Stats()
		if processed == 8 && failed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote pool processed %d / failed %d", processed, failed)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAutoPollingTimer verifies that an ingestion flow registered with a
// real PollInterval polls itself (the Globus Timers path) without manual
// Poll calls.
func TestAutoPollingTimer(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, err := New(Config{Identity: "timers", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	wp, err := NewWastewaterPipeline(p, WastewaterConfig{
		ScenarioDays: 90, StartDay: 60,
		Goldstein:    rt.GoldsteinOptions{Iterations: 60, BurnIn: 80},
		PollInterval: 30 * time.Millisecond,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()

	// Without calling PollAll, the timers must ingest the initial data
	// and trigger the analyses.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if wp.Aggregate.Runs() >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.AERO.WaitIdle()
	if wp.Aggregate.Runs() < 1 {
		t.Fatal("automatic polling never drove the pipeline to aggregation")
	}
	ing, _, err := wp.PlantFlow("O'Brien")
	if err != nil {
		t.Fatal(err)
	}
	if ing.Timer() == nil || ing.Timer().Fires() == 0 {
		t.Fatal("poll timer not firing")
	}
}
