package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"osprey/internal/aero"
	"osprey/internal/gp"
	"osprey/internal/metarvm"
	"osprey/internal/music"
	"osprey/internal/rt"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Config{Identity: "alice", Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

func fastWWConfig() WastewaterConfig {
	return WastewaterConfig{
		ScenarioDays: 100,
		StartDay:     70,
		Goldstein:    rt.GoldsteinOptions{Iterations: 250, BurnIn: 400, Thin: 2},
		Seed:         42,
	}
}

func TestPlatformAssembly(t *testing.T) {
	p := newPlatform(t)
	if p.LoginCompute.EngineDescription() != "login-node" {
		t.Fatal("login tier misconfigured")
	}
	if !strings.Contains(p.BatchCompute.EngineDescription(), "batch") {
		t.Fatal("batch tier misconfigured")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("identity-less platform accepted")
	}
}

func TestFigure1WorkflowTopology(t *testing.T) {
	p := newPlatform(t)
	wp, err := NewWastewaterPipeline(p, fastWWConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()

	// Four plants, Figure 1's names.
	names := wp.PlantNames()
	want := []string{"O'Brien", "Calumet", "Stickney South", "Stickney North"}
	if len(names) != 4 {
		t.Fatalf("want 4 plants, got %d", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("plant %d = %q, want %q", i, names[i], want[i])
		}
	}

	// Metadata: 4 ingestion flows + 4 analysis + 1 aggregate.
	flows, err := p.Meta.ListFlows()
	if err != nil {
		t.Fatal(err)
	}
	ing, ana := 0, 0
	for _, f := range flows {
		switch f.Kind {
		case aero.IngestionKind:
			ing++
		case aero.AnalysisKind:
			ana++
		}
	}
	if ing != 4 || ana != 5 {
		t.Fatalf("flow topology %d ingestion / %d analysis, want 4/5", ing, ana)
	}

	// Aggregate flow subscribes to exactly the four estimate UUIDs with
	// the all-inputs policy (checked behaviorally below and in the
	// dedicated trigger tests).
	for _, name := range names {
		ingf, anaf, err := wp.PlantFlow(name)
		if err != nil {
			t.Fatal(err)
		}
		if ingf == nil || anaf == nil {
			t.Fatalf("missing flows for %s", name)
		}
	}
}

func TestWastewaterPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := newPlatform(t)
	wp, err := NewWastewaterPipeline(p, fastWWConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()

	// First daily cycle: all four feeds are new, so every analysis and
	// the aggregate must run.
	updates, err := wp.PollAll()
	if err != nil {
		t.Fatal(err)
	}
	if updates != 4 {
		t.Fatalf("first poll updated %d feeds, want 4", updates)
	}
	if wp.Aggregate.Runs() != 1 {
		t.Fatalf("aggregate ran %d times, want 1", wp.Aggregate.Runs())
	}

	// Estimates exist and cover the truth reasonably.
	truth := wp.TruthRt()
	for _, name := range wp.PlantNames() {
		est, err := wp.LatestEstimate(name)
		if err != nil {
			t.Fatal(err)
		}
		cov := est.Coverage(truth, 14, len(est.Median)-7)
		if cov < 0.5 {
			t.Fatalf("%s coverage %.0f%% too low", name, cov*100)
		}
	}
	ens, err := wp.LatestEnsemble()
	if err != nil {
		t.Fatal(err)
	}
	if cov := ens.Coverage(truth, 14, len(ens.Median)-7); cov < 0.5 {
		t.Fatalf("ensemble coverage %.0f%% too low", cov*100)
	}

	// No new data: nothing triggers.
	updates, err = wp.PollAll()
	if err != nil {
		t.Fatal(err)
	}
	if updates != 0 || wp.Aggregate.Runs() != 1 {
		t.Fatalf("no-change poll: updates=%d aggRuns=%d", updates, wp.Aggregate.Runs())
	}

	// A week of new data arrives: full retrigger.
	wp.Advance(7)
	updates, err = wp.PollAll()
	if err != nil {
		t.Fatal(err)
	}
	if updates != 4 || wp.Aggregate.Runs() != 2 {
		t.Fatalf("post-advance poll: updates=%d aggRuns=%d", updates, wp.Aggregate.Runs())
	}

	// Plots were produced for sharing with stakeholders.
	plots, err := wp.LatestPlots()
	if err != nil {
		t.Fatal(err)
	}
	if len(plots) != 5 {
		t.Fatalf("want 5 plots (4 plants + ensemble), got %d", len(plots))
	}
	for name, body := range plots {
		if !strings.Contains(body, "R(t)") {
			t.Fatalf("plot %s malformed", name)
		}
	}

	// The expensive analyses went through the batch scheduler.
	if p.Cluster.Stats().Completed < 8 {
		t.Fatalf("cluster completed %d jobs, want >= 8 R(t) runs", p.Cluster.Stats().Completed)
	}
}

func TestComputeTierRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := newPlatform(t)
	cfg := fastWWConfig()
	cfg.Goldstein = rt.GoldsteinOptions{Iterations: 100, BurnIn: 150}
	wp, err := NewWastewaterPipeline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	before := p.Cluster.Stats().Completed
	if _, err := wp.PollAll(); err != nil {
		t.Fatal(err)
	}
	after := p.Cluster.Stats().Completed
	// Exactly the four R(t) analyses hit the scheduler; transform and
	// aggregation ran on the login tier without batch jobs.
	if after-before != 4 {
		t.Fatalf("batch jobs = %d, want 4 (one per plant analysis)", after-before)
	}
}

func TestTriggerPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// With TriggerAll (paper's choice) the aggregate runs once per full
	// round; this test documents the alternative: under TriggerAny it
	// would run once per input update (4x the work per round).
	p := newPlatform(t)
	cfg := fastWWConfig()
	cfg.Goldstein = rt.GoldsteinOptions{Iterations: 80, BurnIn: 120}
	wp, err := NewWastewaterPipeline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	if _, err := wp.PollAll(); err != nil {
		t.Fatal(err)
	}
	if runs := wp.Aggregate.Runs(); runs != 1 {
		t.Fatalf("TriggerAll aggregate ran %d times for one full round, want 1", runs)
	}
}

func fastGSAConfig(reps int) GSAConfig {
	return GSAConfig{
		Replicates: reps,
		Music: music.Options{
			InitialDesign: 15, Budget: 30, CandidatePool: 50,
			RefitEvery: 8, IndexSamples: 256,
			GP: gp.Options{MaxIter: 50, Restarts: 0},
		},
		Nodes: 4, WorkersPerNode: 2,
		Seed: 7,
	}
}

func TestRunGSAInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := newPlatform(t)
	res, err := RunGSA(p, fastGSAConfig(3), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histories) != 3 || len(res.FinalIndices) != 3 {
		t.Fatalf("want 3 replicates, got %d", len(res.Histories))
	}
	if res.Evaluations != 3*30 {
		t.Fatalf("evaluations = %d, want 90", res.Evaluations)
	}
	for r, idx := range res.FinalIndices {
		sum := 0.0
		for _, v := range idx {
			if v < 0 || v > 1 {
				t.Fatalf("replicate %d index %v out of range", r, v)
			}
			sum += v
		}
		// ts and psh dominate hospitalization variance; together they
		// should carry substantial first-order mass.
		if idx[0]+idx[3] < 0.3 {
			t.Fatalf("replicate %d: ts+psh indices %v implausibly small", r, idx)
		}
	}
	// Histories track sample counts.
	for _, h := range res.Histories {
		if len(h) == 0 || h[len(h)-1].N != 30 {
			t.Fatalf("history malformed: %+v", h)
		}
	}
}

func TestInterleavingUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The §3.2 claim: interleaving the instances yields materially better
	// pool utilization (and makespan) than running them sequentially,
	// because single-point refinement batches cannot fill the pool.
	p1 := newPlatform(t)
	cfg := fastGSAConfig(4)
	cfg.ModelDelay = 3 * time.Millisecond
	seqRes, err := RunGSA(p1, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	p2 := newPlatform(t)
	intRes, err := RunGSA(p2, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential: %.1f%% util, %v; interleaved: %.1f%% util, %v",
		seqRes.Pool.UtilizationPct, seqRes.Elapsed, intRes.Pool.UtilizationPct, intRes.Elapsed)
	if intRes.Pool.UtilizationPct <= seqRes.Pool.UtilizationPct {
		t.Fatalf("interleaving did not improve utilization: %.1f%% vs %.1f%%",
			intRes.Pool.UtilizationPct, seqRes.Pool.UtilizationPct)
	}
	// Determinism of results must not depend on scheduling mode.
	for r := range seqRes.FinalIndices {
		for j := range seqRes.FinalIndices[r] {
			if math.Abs(seqRes.FinalIndices[r][j]-intRes.FinalIndices[r][j]) > 1e-9 {
				t.Fatal("interleaved and sequential GSA disagree on results")
			}
		}
	}
}

func TestRunPCEComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cmp, err := RunPCEComparison(nil, 5, 11, []int{60, 100, 150}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Sizes) != 3 {
		t.Fatalf("sizes = %v", cmp.Sizes)
	}
	for k, idx := range cmp.Indices {
		if len(idx) != 5 {
			t.Fatalf("index vector %d has %d entries", k, len(idx))
		}
	}
	if _, err := RunPCEComparison(nil, 1, 1, nil, 3); err == nil {
		t.Fatal("empty sizes accepted")
	}
}

func TestGSAValidation(t *testing.T) {
	if _, err := RunGSA(nil, GSAConfig{}, true); err == nil {
		t.Fatal("nil platform accepted")
	}
}

func TestFigure4MUSICStabilizesBeforePCE(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The structural half of the Figure 4 claim: MUSIC produces index
	// estimates from its first LHS batch onward — below the 56-sample
	// floor where a degree-3, 5-parameter PCE can exist at all — and its
	// final estimates agree with the PCE fit at the shared budget.
	const modelSeed = 11
	space := metarvm.GSAParameterSpace()
	opts := music.Options{
		Space: space, InitialDesign: 20, Budget: 80,
		CandidatePool: 60, IndexSamples: 256,
		GP:   gp.Options{MaxIter: 50, Restarts: 0},
		Seed: 4,
	}
	alg, err := music.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := music.RunSequential(alg, func(x []float64) (float64, error) {
		return metarvm.EvaluateGSA(x, modelSeed)
	}); err != nil {
		t.Fatal(err)
	}
	hist := alg.History()
	if hist[0].N >= 56 {
		t.Fatalf("MUSIC's first estimate needs %d samples; should precede PCE's 56-term floor", hist[0].N)
	}
	pceCmp, err := RunPCEComparison(space, 4, modelSeed, []int{60, 80}, 3)
	if err != nil {
		t.Fatal(err)
	}
	musicIdx, _ := alg.Indices()
	pceIdx := pceCmp.Indices[len(pceCmp.Indices)-1]
	// Agreement on the dominant parameter and rough magnitudes.
	argmax := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	if argmax(musicIdx) != argmax(pceIdx) {
		t.Fatalf("MUSIC and PCE disagree on the dominant parameter: %v vs %v", musicIdx, pceIdx)
	}
}

func TestFigure5ReplicateSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := newPlatform(t)
	res, err := RunGSA(p, fastGSAConfig(4), true)
	if err != nil {
		t.Fatal(err)
	}
	// Epistemic consistency: every replicate agrees on the dominant
	// parameter.
	argmax := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	first := argmax(res.FinalIndices[0])
	spread := 0.0
	for _, idx := range res.FinalIndices {
		if argmax(idx) != first {
			t.Fatalf("replicates disagree on the dominant parameter: %v", res.FinalIndices)
		}
		spread += idx[first]
	}
	mean := spread / float64(len(res.FinalIndices))
	// Aleatoric spread: replicates are not identical (different model
	// seeds must leave a trace), but they cluster around the mean.
	identical := true
	for _, idx := range res.FinalIndices[1:] {
		if idx[first] != res.FinalIndices[0][first] {
			identical = false
		}
		if v := idx[first]; v < mean-0.25 || v > mean+0.25 {
			t.Fatalf("replicate index %v far from replicate mean %v", v, mean)
		}
	}
	if identical {
		t.Fatal("replicates with different seeds produced identical indices")
	}
}

func TestMeanResponseGSA(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The §3.1.2 contrast: GSA on the mean response (averaging replicates
	// per point) vs per-replicate GSA. Mean-response runs must cost
	// MeanReplicates model evaluations per task and produce less
	// replicate-to-replicate spread (the averaging removes aleatoric
	// variance from the surrogate's view).
	p := newPlatform(t)
	cfg := fastGSAConfig(2)
	cfg.MeanReplicates = 3
	res, err := RunGSA(p, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalIndices) != 2 {
		t.Fatalf("replicates = %d", len(res.FinalIndices))
	}
	// Sanity: indices remain valid and the dominant parameter holds.
	for _, idx := range res.FinalIndices {
		for _, v := range idx {
			if v < 0 || v > 1 {
				t.Fatalf("index %v out of range", v)
			}
		}
		if idx[0] < 0.1 {
			t.Fatalf("ts index %v implausibly small under mean response", idx[0])
		}
	}
}

func TestRunGSAOnABM(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := newPlatform(t)
	cfg := fastGSAConfig(2)
	cfg.Model = "abm"
	cfg.Music.InitialDesign = 10
	cfg.Music.Budget = 16
	res, err := RunGSA(p, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 2*16 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	for _, idx := range res.FinalIndices {
		for _, v := range idx {
			if v < 0 || v > 1 {
				t.Fatalf("index %v out of range", v)
			}
		}
	}
	// Unknown models are rejected.
	bad := fastGSAConfig(1)
	bad.Model = "spherical-cow"
	if _, err := RunGSA(newPlatform(t), bad, true); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestWastewaterConfigValidation(t *testing.T) {
	p := newPlatform(t)
	if _, err := NewWastewaterPipeline(p, WastewaterConfig{ScenarioDays: 50, StartDay: 80}); err == nil {
		t.Fatal("StartDay beyond scenario accepted")
	}
}

func TestPlantLookupErrors(t *testing.T) {
	p := newPlatform(t)
	wp, err := NewWastewaterPipeline(p, fastWWConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	if _, _, err := wp.PlantFlow("Atlantis"); err == nil {
		t.Fatal("unknown plant flow lookup accepted")
	}
	if _, err := wp.LatestEstimate("Atlantis"); err == nil {
		t.Fatal("unknown plant estimate lookup accepted")
	}
	// Before any poll there is no ensemble yet.
	if _, err := wp.LatestEnsemble(); err == nil {
		t.Fatal("ensemble available before any run")
	}
}

func TestTruthRtIsCopy(t *testing.T) {
	p := newPlatform(t)
	wp, err := NewWastewaterPipeline(p, fastWWConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	a := wp.TruthRt()
	a[0] = -99
	b := wp.TruthRt()
	if b[0] == -99 {
		t.Fatal("TruthRt leaked internal state")
	}
}
