// Package core assembles the OSPREY platform: it wires the simulated
// research fabric (Globus-style auth/transfer/compute/timers), the batch
// scheduler, the AERO metadata/event platform, and the EMEWS task database
// into one deployment, and implements the paper's two use cases end to end
// — the automated multi-source wastewater R(t) workflow of §2 (Figures 1-2)
// and the interleaved MUSIC/PCE global sensitivity analysis of §3
// (Figures 4-5, Table 1).
package core

import (
	"errors"
	"time"

	"osprey/internal/aero"
	"osprey/internal/emews"
	"osprey/internal/globus"
	"osprey/internal/parallel"
	"osprey/internal/scheduler"
)

// Config describes an OSPREY deployment.
type Config struct {
	// Identity is the operating researcher (owner of collections).
	Identity string
	// Nodes sizes the simulated cluster (default 8).
	Nodes int
	// Collection is the storage collection name (default "osprey").
	Collection string
	// Meta optionally points the platform at a remote AERO metadata
	// server; nil uses an in-process store.
	Meta aero.Metadata
	// TaskDB optionally supplies a pre-built (e.g. WAL-recovered) EMEWS
	// task database; nil creates a fresh in-memory one.
	TaskDB *emews.DB
	// BatchWalltime bounds batch compute tasks (default 10m).
	BatchWalltime time.Duration
	// Parallelism, when positive, bounds the process-wide numerical worker
	// pool (internal/parallel). Zero keeps the existing resolution:
	// OSPREY_PARALLELISM if set, else GOMAXPROCS. Results are identical at
	// any setting; only wall-clock time changes.
	Parallelism int
}

// Platform is a fully wired OSPREY deployment.
type Platform struct {
	Identity   string
	Collection string

	Auth     *globus.Auth
	Token    *globus.Token
	Storage  *globus.Endpoint
	Transfer *globus.TransferService
	Timers   *globus.TimerService

	Cluster      *scheduler.Cluster
	LoginCompute *globus.ComputeEndpoint // cheap transform/aggregate tier
	BatchCompute *globus.ComputeEndpoint // scheduler-backed analysis tier

	Meta aero.Metadata
	AERO *aero.Platform

	TaskDB *emews.DB
}

// New assembles a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Identity == "" {
		return nil, errors.New("core: Config.Identity is required")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.Collection == "" {
		cfg.Collection = "osprey"
	}
	if cfg.BatchWalltime <= 0 {
		cfg.BatchWalltime = 10 * time.Minute
	}
	if cfg.Parallelism > 0 {
		parallel.SetWorkers(cfg.Parallelism)
	}

	auth := globus.NewAuth()
	token := auth.Issue(cfg.Identity, 0,
		globus.ScopeTransfer, globus.ScopeCompute, globus.ScopeTimers, globus.ScopeFlows)

	storage := globus.NewEndpoint("eagle")
	if err := storage.CreateCollection(cfg.Collection, cfg.Identity); err != nil {
		return nil, err
	}
	cluster, err := scheduler.NewCluster(cfg.Nodes)
	if err != nil {
		return nil, err
	}

	meta := cfg.Meta
	if meta == nil {
		meta = aero.NewStore()
	}
	taskDB := cfg.TaskDB
	if taskDB == nil {
		taskDB = emews.NewDB()
	}
	timers := globus.NewTimerService(auth)
	transfer := globus.NewTransferService(auth)
	aeroPlat, err := aero.NewPlatform(aero.Config{
		Meta:     meta,
		Transfer: transfer,
		Timers:   timers,
		Identity: cfg.Identity,
		TokenID:  token.ID,
	})
	if err != nil {
		cluster.Shutdown()
		return nil, err
	}

	return &Platform{
		Identity:   cfg.Identity,
		Collection: cfg.Collection,
		Auth:       auth,
		Token:      token,
		Storage:    storage,
		Transfer:   transfer,
		Timers:     timers,
		Cluster:    cluster,
		LoginCompute: globus.NewComputeEndpoint("bebop-login", auth,
			globus.LoginNodeEngine{}),
		BatchCompute: globus.NewComputeEndpoint("bebop-compute", auth,
			globus.BatchEngine{Cluster: cluster, Nodes: 1, Walltime: cfg.BatchWalltime}),
		Meta:   meta,
		AERO:   aeroPlat,
		TaskDB: taskDB,
	}, nil
}

// StorageTarget returns the platform's default AERO storage target.
func (p *Platform) StorageTarget() aero.StorageTarget {
	return aero.StorageTarget{Endpoint: p.Storage, Collection: p.Collection}
}

// Shutdown stops timers, closes the task database, and drains the cluster.
func (p *Platform) Shutdown() {
	p.Timers.StopAll()
	p.TaskDB.Close()
	p.AERO.WaitIdle()
	p.Cluster.Shutdown()
}
