package core

import (
	"testing"

	"osprey/internal/parallel"
	"osprey/internal/rt"
)

// TestPollAllSerialParallelEquality is the platform leg of the
// repository-wide determinism contract: the four plants' Goldstein
// analyses run concurrently inside PollAll, and the resulting per-plant
// estimates and population-weighted ensemble must be bit-identical at
// one worker and at eight.
func TestPollAllSerialParallelEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	defer parallel.SetWorkers(0)
	run := func(workers int) (map[string]*rt.Estimate, *rt.EnsembleEstimate) {
		parallel.SetWorkers(workers)
		p := newPlatform(t)
		cfg := WastewaterConfig{
			ScenarioDays: 90,
			StartDay:     70,
			Goldstein:    rt.GoldsteinOptions{Iterations: 120, BurnIn: 180, Thin: 2},
			Seed:         42,
		}
		wp, err := NewWastewaterPipeline(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer wp.Close()
		if _, err := wp.PollAll(); err != nil {
			t.Fatal(err)
		}
		ests := make(map[string]*rt.Estimate)
		for _, name := range wp.PlantNames() {
			est, err := wp.LatestEstimate(name)
			if err != nil {
				t.Fatal(err)
			}
			ests[name] = est
		}
		ens, err := wp.LatestEnsemble()
		if err != nil {
			t.Fatal(err)
		}
		return ests, ens
	}
	estA, ensA := run(1)
	estB, ensB := run(8)
	for name, a := range estA {
		b := estB[name]
		for d := range a.Median {
			if a.Median[d] != b.Median[d] || a.Lower[d] != b.Lower[d] || a.Upper[d] != b.Upper[d] {
				t.Fatalf("%s day %d: serial and parallel plant estimates differ", name, d)
			}
		}
	}
	for d := range ensA.Median {
		if ensA.Median[d] != ensB.Median[d] || ensA.Lower[d] != ensB.Lower[d] || ensA.Upper[d] != ensB.Upper[d] {
			t.Fatalf("day %d: serial and parallel ensembles differ", d)
		}
	}
}
