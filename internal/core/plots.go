package core

import (
	"strings"

	"osprey/internal/plot"
	"osprey/internal/rt"
)

// renderEstimatePlot draws one plant's panel of Figure 2.
func renderEstimatePlot(name string, est *rt.Estimate) string {
	x := make([]float64, len(est.Days))
	for i, d := range est.Days {
		x[i] = float64(d)
	}
	c := &plot.Chart{
		Title: "R(t) — " + name, XLabel: "day", YLabel: "R(t)",
		Series: []plot.Series{{Name: "median", X: x, Y: est.Median}},
		Band:   &plot.Band{X: x, Lower: est.Lower, Upper: est.Upper},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		return "plot error: " + err.Error()
	}
	return sb.String()
}

// renderEnsemblePlot draws the bottom panel of Figure 2.
func renderEnsemblePlot(ens *rt.EnsembleEstimate) string {
	x := make([]float64, len(ens.Days))
	for i, d := range ens.Days {
		x[i] = float64(d)
	}
	c := &plot.Chart{
		Title: "R(t) — population-weighted ensemble", XLabel: "day", YLabel: "R(t)",
		Series: []plot.Series{{Name: "median", X: x, Y: ens.Median}},
		Band:   &plot.Band{X: x, Lower: ens.Lower, Upper: ens.Upper},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		return "plot error: " + err.Error()
	}
	return sb.String()
}
