package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"osprey/internal/abm"
	"osprey/internal/design"
	"osprey/internal/emews"
	"osprey/internal/gp"
	"osprey/internal/metarvm"
	"osprey/internal/music"
	"osprey/internal/parallel"
	"osprey/internal/pce"
	"osprey/internal/rng"
)

// GSAConfig parameterizes the use case 2 study: N replicate MUSIC
// instances over one EMEWS worker pool, evaluating the MetaRVM model at
// Table 1 points.
type GSAConfig struct {
	// Replicates is the number of MUSIC instances, one per MetaRVM random
	// seed (the paper runs 10; "the workflow itself has separately been
	// scaled to 100").
	Replicates int
	// Music configures each instance. Music.Space defaults to the Table 1
	// space; Music.Seed is overridden per replicate.
	Music music.Options
	// Nodes / WorkersPerNode size the scheduler-launched worker pool
	// (defaults 4 / 2).
	Nodes, WorkersPerNode int
	// TaskType names the EMEWS queue (default "metarvm").
	TaskType string
	// ModelDelay adds artificial per-evaluation cost, standing in for the
	// expensive agent-based models the paper says would benefit most.
	ModelDelay time.Duration
	// Model selects the simulator: "metarvm" (default, ~2 ms/run) or
	// "abm", the agent-based model whose higher cost (~40 ms/run) is the
	// regime where the paper says MUSIC's sample efficiency pays off most.
	Model string
	// Surrogate selects the GP implementation backing each MUSIC instance:
	// "dense" (default, exact) or "sparse" (inducing-point approximation,
	// the sub-cubic path that makes 10k-point budgets tractable).
	Surrogate string
	// Inducing caps the sparse surrogate's inducing-point count (default
	// gp.DefaultInducing; ignored for dense).
	Inducing int
	// MeanReplicates, when > 0, switches to the conventional design the
	// paper contrasts with its per-replicate approach: each task returns
	// the QoI averaged over this many stochastic model runs, and every
	// MUSIC instance sees the mean response instead of one fixed seed
	// ("GSA is often performed on the mean response, calculated across
	// multiple replicates", §3.1.2).
	MeanReplicates int
	// Seed derives the replicate seeds.
	Seed uint64
}

func (c *GSAConfig) defaults() error {
	if c.Replicates <= 0 {
		c.Replicates = 10
	}
	if c.Music.Space == nil {
		c.Music.Space = metarvm.GSAParameterSpace()
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 2
	}
	if c.Model == "" {
		c.Model = "metarvm"
	}
	if c.TaskType == "" {
		c.TaskType = c.Model
	}
	switch c.Surrogate {
	case "", "dense":
		c.Music.Surrogate = gp.DenseSurrogate
	case "sparse":
		c.Music.Surrogate = gp.SparseSurrogate
		if c.Inducing > 0 {
			c.Music.Inducing = c.Inducing
		}
	default:
		return fmt.Errorf("core: unknown surrogate kind %q (want dense or sparse)", c.Surrogate)
	}
	return nil
}

// gsaTask is the EMEWS task payload: a Table 1 point plus the replicate's
// model seed (or, in mean-response mode, the number of seeds to average).
type gsaTask struct {
	X    []float64 `json:"x"`
	Seed uint64    `json:"seed"`
	// MeanOver > 0 averages the QoI over seeds Seed..Seed+MeanOver-1.
	MeanOver int `json:"mean_over,omitempty"`
}

type gsaResult struct {
	Y float64 `json:"y"`
}

// GSAResult is the outcome of a replicated GSA study.
type GSAResult struct {
	// Histories[r] is replicate r's index-convergence trajectory
	// (the lines of Figure 5; replicate 0 with a fixed seed is the MUSIC
	// curve of Figure 4).
	Histories [][]music.Snapshot
	// FinalIndices[r] is replicate r's final first-order estimate.
	FinalIndices [][]float64
	// Pool reports worker utilization (the §3.2 claim).
	Pool emews.PoolStats
	// Elapsed is the wall-clock makespan of the study.
	Elapsed time.Duration
	// Evaluations is the total number of model runs.
	Evaluations int
}

// instanceState tracks one interleaved MUSIC instance.
type instanceState struct {
	alg     *music.Algorithm
	pending []*emews.Future
	points  [][]float64 // points matching pending futures
	seed    uint64      // MetaRVM replicate seed
}

// modelEvaluator selects the simulator behind the worker pool.
func modelEvaluator(model string) (func([]float64, uint64) (float64, error), error) {
	switch model {
	case "", "metarvm":
		return metarvm.EvaluateGSA, nil
	case "abm":
		return abm.EvaluateGSA, nil
	default:
		return nil, fmt.Errorf("core: unknown GSA model %q", model)
	}
}

// modelHandler evaluates simulator tasks on the worker pool.
func modelHandler(evaluate func([]float64, uint64) (float64, error), delay time.Duration) emews.Handler {
	return func(ctx context.Context, payload string) (string, error) {
		var task gsaTask
		if err := json.Unmarshal([]byte(payload), &task); err != nil {
			return "", err
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		var y float64
		if task.MeanOver > 0 {
			total := 0.0
			for k := 0; k < task.MeanOver; k++ {
				v, err := evaluate(task.X, task.Seed+uint64(k))
				if err != nil {
					return "", err
				}
				total += v
			}
			y = total / float64(task.MeanOver)
		} else {
			v, err := evaluate(task.X, task.Seed)
			if err != nil {
				return "", err
			}
			y = v
		}
		out, err := json.Marshal(gsaResult{Y: y})
		return string(out), err
	}
}

// RunGSA executes the replicated MUSIC study. When interleaved is true the
// instances share the pool cooperatively (the paper's design); when false
// each instance runs to completion before the next starts (the ablation
// whose poor utilization motivates interleaving).
func RunGSA(p *Platform, cfg GSAConfig, interleaved bool) (*GSAResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, errors.New("core: nil platform")
	}

	evaluate, err := modelEvaluator(cfg.Model)
	if err != nil {
		return nil, err
	}
	// Initialization: set up the task queue, then start a worker pool by
	// submitting a job to the scheduler (§3.2).
	pool, err := emews.StartScheduledPool(
		p.Cluster, cfg.Nodes, cfg.WorkersPerNode,
		p.TaskDB, cfg.TaskType, modelHandler(evaluate, cfg.ModelDelay), 0)
	if err != nil {
		return nil, err
	}
	defer pool.Stop()

	root := rng.New(cfg.Seed)
	instances := make([]*instanceState, cfg.Replicates)
	for i := range instances {
		opts := cfg.Music
		opts.Seed = cfg.Seed + uint64(i)*7919
		alg, err := music.New(opts)
		if err != nil {
			return nil, err
		}
		instances[i] = &instanceState{
			alg:  alg,
			seed: uint64(root.Split(fmt.Sprintf("replicate/%d", i)).Uint64()%100000 + 1),
		}
	}

	start := time.Now()
	evals := 0
	submit := func(inst *instanceState, pts [][]float64) error {
		for _, pt := range pts {
			payload, err := json.Marshal(gsaTask{X: pt, Seed: inst.seed, MeanOver: cfg.MeanReplicates})
			if err != nil {
				return err
			}
			f, err := p.TaskDB.Submit(cfg.TaskType, 0, string(payload))
			if err != nil {
				return err
			}
			inst.pending = append(inst.pending, f)
			inst.points = append(inst.points, pt)
			evals++
		}
		return nil
	}
	// Seed every instance's initial design (or, sequentially, one at a
	// time inside the drain loop below).
	for _, inst := range instances {
		pts, err := inst.alg.InitialDesign()
		if err != nil {
			return nil, err
		}
		if err := submit(inst, pts); err != nil {
			return nil, err
		}
		if !interleaved {
			if err := drainInstance(p, cfg, inst, submit); err != nil {
				return nil, err
			}
		}
	}
	if interleaved {
		if err := interleave(p, cfg, instances, submit); err != nil {
			return nil, err
		}
	}

	res := &GSAResult{Elapsed: time.Since(start), Evaluations: evals}
	for _, inst := range instances {
		res.Histories = append(res.Histories, inst.alg.History())
		idx, err := inst.alg.Indices()
		if err != nil {
			return nil, err
		}
		res.FinalIndices = append(res.FinalIndices, idx)
	}
	pool.Stop()
	res.Pool = pool.Stats()
	return res, nil
}

// harvest collects any completed futures of the instance; all-or-nothing
// batches are observed together so the surrogate sees the full initial
// design at once.
func harvest(inst *instanceState, block bool) (done bool, err error) {
	if len(inst.pending) == 0 {
		return true, nil
	}
	if block {
		for _, f := range inst.pending {
			if _, err := f.Result(context.Background()); err != nil {
				return false, err
			}
		}
	} else {
		// The paper's cooperative pattern: check a single future, then
		// cede control to the next instance.
		if _, _, finished := inst.pending[0].TryResult(); !finished {
			return false, nil
		}
		for _, f := range inst.pending {
			if _, _, finished := f.TryResult(); !finished {
				return false, nil
			}
		}
	}
	vals := make([]float64, len(inst.pending))
	for i, f := range inst.pending {
		s, err := f.Result(context.Background())
		if err != nil {
			return false, err
		}
		var r gsaResult
		if err := json.Unmarshal([]byte(s), &r); err != nil {
			return false, err
		}
		vals[i] = r.Y
	}
	if err := inst.alg.Observe(inst.points, vals); err != nil {
		return false, err
	}
	inst.pending = nil
	inst.points = nil
	return true, nil
}

type submitFn func(*instanceState, [][]float64) error

// drainInstance runs one instance to completion, blocking on each batch
// (the sequential ablation).
func drainInstance(p *Platform, cfg GSAConfig, inst *instanceState, submit submitFn) error {
	for {
		if _, err := harvest(inst, true); err != nil {
			return err
		}
		if inst.alg.Done() {
			return nil
		}
		pt, err := inst.alg.NextPoint()
		if err != nil {
			return err
		}
		if err := submit(inst, [][]float64{pt}); err != nil {
			return err
		}
	}
}

// interleave pumps all instances cooperatively until every budget is
// exhausted: each pass gives each instance one non-blocking completion
// check and, when its batch is fully harvested, its next submission.
func interleave(p *Platform, cfg GSAConfig, instances []*instanceState, submit submitFn) error {
	for {
		allDone := true
		progressed := false
		for _, inst := range instances {
			if inst.alg.Done() && len(inst.pending) == 0 {
				continue
			}
			allDone = false
			ready, err := harvest(inst, false)
			if err != nil {
				return err
			}
			if !ready {
				continue
			}
			progressed = true
			if inst.alg.Done() {
				continue
			}
			pt, err := inst.alg.NextPoint()
			if err != nil {
				return err
			}
			if err := submit(inst, [][]float64{pt}); err != nil {
				return err
			}
		}
		if allDone {
			return nil
		}
		if !progressed {
			// Nothing completed this pass; yield briefly rather than
			// spinning against the task database.
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// PCEComparison fits one-shot PCE surrogates on LHS designs of increasing
// size against a fixed-seed MetaRVM response, returning first-order index
// estimates per design size — the magenta curves of Figure 4.
type PCEComparison struct {
	Sizes   []int
	Indices [][]float64 // Indices[k] corresponds to Sizes[k]
}

// RunPCEComparison evaluates the model once on the largest design and fits
// nested subsets, mirroring "curves showing how the estimated indices
// evolve as additional samples are added one at a time" (§3.3).
func RunPCEComparison(space *design.Space, seed uint64, modelSeed uint64, sizes []int, degree int) (*PCEComparison, error) {
	if space == nil {
		space = metarvm.GSAParameterSpace()
	}
	if len(sizes) == 0 {
		return nil, errors.New("core: no design sizes given")
	}
	if degree <= 0 {
		degree = 3 // the paper's best-performing PCE degree
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	// Model evaluations are independent (each run owns its config and RNG),
	// as are the per-size fits over the shared read-only design — so both
	// fan out over the worker pool into per-index slots, with errors and
	// results reduced in design/size order.
	pts := design.LatinHypercubeIn(rng.New(seed).Split("pce"), max, space)
	ys := make([]float64, max)
	evalErrs := make([]error, max)
	parallel.ForChunk(max, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ys[i], evalErrs[i] = metarvm.EvaluateGSA(pts[i], modelSeed)
		}
	})
	for _, err := range evalErrs {
		if err != nil {
			return nil, err
		}
	}
	unit := make([][]float64, max)
	for i, pt := range pts {
		unit[i] = space.Unscale(pt)
	}
	kept := make([]int, 0, len(sizes))
	for _, n := range sizes {
		if n <= max {
			kept = append(kept, n)
		}
	}
	indices := make([][]float64, len(kept))
	fitErrs := make([]error, len(kept))
	parallel.For(len(kept), func(k int) {
		m, err := pce.Fit(unit[:kept[k]], ys[:kept[k]], pce.Options{Degree: degree, Ridge: 1e-8})
		if err != nil {
			fitErrs[k] = err
			return
		}
		indices[k] = m.FirstOrderIndices()
	})
	out := &PCEComparison{}
	for k, n := range kept {
		if fitErrs[k] != nil {
			return nil, fitErrs[k]
		}
		out.Sizes = append(out.Sizes, n)
		out.Indices = append(out.Indices, indices[k])
	}
	return out, nil
}
