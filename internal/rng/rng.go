// Package rng provides deterministic, splittable pseudo-random streams and
// exact samplers for the distributions used throughout the OSPREY
// reproduction (epidemic simulation, MCMC, surrogate modeling).
//
// Reproducibility is a first-class requirement of the paper's workflows:
// every stochastic replicate of the MetaRVM model is "generated using a
// unique random stream seed value" (§3.1.2). Stream supports hierarchical
// splitting so that a workflow, its flows, and its tasks each own an
// independent stream derived deterministically from a root seed.
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through SplitMix64. The zero value is not valid;
// construct streams with New or Split.
//
// Stream is NOT safe for concurrent use; give each goroutine its own
// stream via Split.
type Stream struct {
	s [4]uint64
	// label records the split path from the root, for debugging and
	// provenance reporting.
	label string
	// spare state for the polar normal method.
	hasSpare bool
	spare    float64
}

// New returns a stream seeded from seed. Two streams created with the same
// seed produce identical sequences on every platform.
func New(seed uint64) *Stream {
	st := &Stream{label: fmt.Sprintf("root(%d)", seed)}
	sm := seed
	for i := range st.s {
		sm, st.s[i] = splitmix64(sm)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Split derives an independent child stream identified by label. Splitting
// is deterministic: the same parent state and label always produce the same
// child. The parent stream is not advanced, so splits can be interleaved
// with draws without perturbing either sequence.
func (r *Stream) Split(label string) *Stream {
	h := fnv64a(label)
	child := &Stream{label: r.label + "/" + label}
	sm := r.s[0] ^ bits.RotateLeft64(r.s[2], 19) ^ h
	for i := range child.s {
		sm, child.s[i] = splitmix64(sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = h | 1
	}
	return child
}

// SplitN returns n independent child streams labeled label/0 .. label/n-1.
func (r *Stream) SplitN(label string, n int) []*Stream {
	out := make([]*Stream, n)
	for i := range out {
		out[i] = r.Split(fmt.Sprintf("%s/%d", label, i))
	}
	return out
}

// Label reports the split path of the stream from its root seed.
func (r *Stream) Label() string { return r.label }

func splitmix64(x uint64) (next, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	res := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return res
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in the open interval (0, 1), never
// returning exactly zero. Useful as input to inverse-CDF transforms and
// logarithms.
func (r *Stream) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int(hi)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a standard normal draw (mean 0, variance 1) using the
// Marsaglia polar method.
func (r *Stream) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormalMS returns a normal draw with the given mean and standard deviation.
func (r *Stream) NormalMS(mean, sd float64) float64 {
	return mean + sd*r.Normal()
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Exponential returns an exponential draw with the given rate (mean 1/rate).
func (r *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Gamma returns a draw from Gamma(shape, rate) with mean shape/rate, using
// the Marsaglia–Tsang squeeze method (exact for shape >= 1; boosted for
// shape < 1).
func (r *Stream) Gamma(shape, rate float64) float64 {
	if shape <= 0 || rate <= 0 {
		panic("rng: Gamma requires shape > 0 and rate > 0")
	}
	boost := 1.0
	if shape < 1 {
		boost = math.Pow(r.Float64Open(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / rate
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v / rate
		}
	}
}

// Beta returns a draw from Beta(a, b) via the two-gamma construction.
func (r *Stream) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Binomial returns an exact draw from Binomial(n, p). For small n it sums
// Bernoulli trials; for large n it uses the exact recursive beta-splitting
// method (expected O(log n) gamma draws), so metapopulation transitions over
// compartments with many individuals stay cheap.
func (r *Stream) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial requires n >= 0")
	}
	switch {
	case p <= 0 || n == 0:
		return 0
	case p >= 1:
		return n
	}
	count := 0
	for n > 64 {
		i := (n + 1) / 2
		b := r.Beta(float64(i), float64(n+1-i))
		if b <= p {
			count += i
			p = (p - b) / (1 - b)
			n -= i
		} else {
			p = p / b
			n = i - 1
		}
		if p <= 0 {
			return count
		}
		if p >= 1 {
			return count + n
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			count++
		}
	}
	return count
}

// Poisson returns an exact draw from Poisson(mean) using Knuth's method for
// small means and the Ahrens–Dieter gamma-reduction recursion for large
// means.
func (r *Stream) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson requires mean >= 0")
	}
	count := 0
	for mean > 30 {
		m := int(math.Floor(7 * mean / 8))
		g := r.Gamma(float64(m), 1)
		if g <= mean {
			count += m
			mean -= g
		} else {
			return count + r.Binomial(m-1, mean/g)
		}
	}
	l := math.Exp(-mean)
	k, prod := 0, 1.0
	for {
		prod *= r.Float64()
		if prod <= l {
			return count + k
		}
		k++
	}
}

// NegBinomial returns a draw with the (size, prob) parameterization: the
// number of failures before `size` successes, implemented as a
// gamma-mixed Poisson so that non-integer size (overdispersion) works.
func (r *Stream) NegBinomial(size, prob float64) int {
	if size <= 0 || prob <= 0 || prob > 1 {
		panic("rng: NegBinomial requires size > 0 and prob in (0,1]")
	}
	if prob == 1 {
		return 0
	}
	lambda := r.Gamma(size, prob/(1-prob))
	return r.Poisson(lambda)
}

// Dirichlet fills out with a draw from Dirichlet(alpha). len(out) must equal
// len(alpha).
func (r *Stream) Dirichlet(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("rng: Dirichlet length mismatch")
	}
	sum := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a, 1)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// Multinomial distributes n trials over the given probability weights
// (which need not be normalized), returning a count per category. The draw
// is exact, performed as a chain of conditional binomials.
func (r *Stream) Multinomial(n int, weights []float64) []int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Multinomial requires nonnegative weights")
		}
		total += w
	}
	out := make([]int, len(weights))
	remaining := n
	for i, w := range weights {
		if remaining == 0 {
			break
		}
		if i == len(weights)-1 {
			out[i] = remaining
			break
		}
		if total <= 0 {
			break
		}
		k := r.Binomial(remaining, w/total)
		out[i] = k
		remaining -= k
		total -= w
	}
	return out
}

// MarshalBinary encodes the full stream state (generator state, spare
// normal, label) so long-running workflows can checkpoint and resume with
// bit-identical randomness.
func (r *Stream) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4*8+9+len(r.label))
	for _, s := range r.s {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], s)
		buf = append(buf, b[:]...)
	}
	var sp [8]byte
	binary.LittleEndian.PutUint64(sp[:], math.Float64bits(r.spare))
	buf = append(buf, sp[:]...)
	if r.hasSpare {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, r.label...)
	return buf, nil
}

// UnmarshalBinary restores a stream saved with MarshalBinary.
func (r *Stream) UnmarshalBinary(data []byte) error {
	const fixed = 4*8 + 9
	if len(data) < fixed {
		return fmt.Errorf("rng: truncated stream state (%d bytes)", len(data))
	}
	for i := range r.s {
		r.s[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	r.spare = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	r.hasSpare = data[40] == 1
	r.label = string(data[fixed:])
	return nil
}
