package rng_test

import (
	"fmt"

	"osprey/internal/rng"
)

func ExampleStream_Split() {
	root := rng.New(42)
	// Each workflow component derives its own independent, reproducible
	// stream; splitting never perturbs the parent.
	flowA := root.Split("flow-a")
	flowB := root.Split("flow-b")
	fmt.Println(flowA.Label())
	fmt.Println(flowB.Label())
	fmt.Println(flowA.Uint64() != flowB.Uint64())
	// Output:
	// root(42)/flow-a
	// root(42)/flow-b
	// true
}

func ExampleStream_Binomial() {
	r := rng.New(7)
	// Exact binomial draws stay cheap even for large compartments.
	draw := r.Binomial(1000000, 0.25)
	fmt.Println(draw > 245000 && draw < 255000)
	// Output: true
}
