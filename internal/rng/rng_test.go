package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split("flow").Split("task/3")
	b := New(7).Split("flow").Split("task/3")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical split paths diverged")
		}
	}
}

func TestSplitIndependentOfParentDraws(t *testing.T) {
	p1 := New(9)
	c1 := p1.Split("x")
	p2 := New(9)
	p2.Uint64() // advancing the parent must not change the child
	c2 := p2.Split("x")
	// Split is defined on parent *state*; since p2 advanced, c2 differs.
	// What must hold: splitting twice from the same state with different
	// labels yields different streams, and the parent sequence is
	// unaffected by splitting.
	q1 := New(9)
	_ = q1.Split("anything")
	q2 := New(9)
	for i := 0; i < 50; i++ {
		if q1.Uint64() != q2.Uint64() {
			t.Fatal("splitting perturbed the parent sequence")
		}
	}
	_ = c1
	_ = c2
}

func TestSplitLabelsDiffer(t *testing.T) {
	root := New(3)
	a := root.Split("a")
	b := root.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits look correlated: %d/100 equal draws", same)
	}
}

func TestSplitN(t *testing.T) {
	streams := New(1).SplitN("rep", 10)
	if len(streams) != 10 {
		t.Fatalf("want 10 streams, got %d", len(streams))
	}
	seen := map[uint64]bool{}
	for _, s := range streams {
		v := s.Uint64()
		if seen[v] {
			t.Fatal("two replicate streams started identically")
		}
		seen[v] = true
	}
}

func TestLabel(t *testing.T) {
	s := New(5).Split("flow").Split("task")
	want := "root(5)/flow/task"
	if s.Label() != want {
		t.Fatalf("label = %q, want %q", s.Label(), want)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	counts := make([]int, 7)
	n := 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-float64(n)/7) > 500 {
			t.Fatalf("Intn(7) biased: bucket %d has %d of %d", k, c, n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func momentTest(t *testing.T, name string, draw func() float64, wantMean, wantVar, tol float64) {
	t.Helper()
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-wantMean) > tol*math.Max(1, math.Abs(wantMean)) {
		t.Errorf("%s: mean %v, want %v", name, mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 3*tol*math.Max(1, wantVar) {
		t.Errorf("%s: var %v, want %v", name, variance, wantVar)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(21)
	momentTest(t, "Normal", r.Normal, 0, 1, 0.02)
}

func TestNormalMSMoments(t *testing.T) {
	r := New(22)
	momentTest(t, "NormalMS", func() float64 { return r.NormalMS(3, 2) }, 3, 4, 0.02)
}

func TestLogNormalMoments(t *testing.T) {
	r := New(23)
	mu, sigma := 0.5, 0.4
	wantMean := math.Exp(mu + sigma*sigma/2)
	wantVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	momentTest(t, "LogNormal", func() float64 { return r.LogNormal(mu, sigma) }, wantMean, wantVar, 0.03)
}

func TestExponentialMoments(t *testing.T) {
	r := New(24)
	momentTest(t, "Exponential", func() float64 { return r.Exponential(2) }, 0.5, 0.25, 0.03)
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, rate float64 }{{0.5, 1}, {1, 2}, {2.5, 0.5}, {20, 4}}
	for _, c := range cases {
		r := New(25)
		momentTest(t, "Gamma", func() float64 { return r.Gamma(c.shape, c.rate) },
			c.shape/c.rate, c.shape/(c.rate*c.rate), 0.04)
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(26)
	a, b := 2.0, 5.0
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	momentTest(t, "Beta", func() float64 { return r.Beta(a, b) }, wantMean, wantVar, 0.03)
}

func TestBinomialSmallMoments(t *testing.T) {
	r := New(27)
	n, p := 20, 0.3
	momentTest(t, "BinomialSmall", func() float64 { return float64(r.Binomial(n, p)) },
		float64(n)*p, float64(n)*p*(1-p), 0.03)
}

func TestBinomialLargeMoments(t *testing.T) {
	r := New(28)
	n, p := 50000, 0.013
	momentTest(t, "BinomialLarge", func() float64 { return float64(r.Binomial(n, p)) },
		float64(n)*p, float64(n)*p*(1-p), 0.03)
}

func TestBinomialEdges(t *testing.T) {
	r := New(29)
	if v := r.Binomial(100, 0); v != 0 {
		t.Fatalf("Binomial(n,0) = %d", v)
	}
	if v := r.Binomial(100, 1); v != 100 {
		t.Fatalf("Binomial(n,1) = %d", v)
	}
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0,p) = %d", v)
	}
}

func TestBinomialInRangeProperty(t *testing.T) {
	r := New(30)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 20000)
		p := float64(pRaw) / 65535.0
		v := r.Binomial(n, p)
		return v >= 0 && v <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonSmallMoments(t *testing.T) {
	r := New(31)
	momentTest(t, "PoissonSmall", func() float64 { return float64(r.Poisson(3.7)) }, 3.7, 3.7, 0.03)
}

func TestPoissonLargeMoments(t *testing.T) {
	r := New(32)
	momentTest(t, "PoissonLarge", func() float64 { return float64(r.Poisson(480)) }, 480, 480, 0.03)
}

func TestPoissonZero(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
}

func TestNegBinomialMoments(t *testing.T) {
	r := New(33)
	size, prob := 5.0, 0.4
	wantMean := size * (1 - prob) / prob
	wantVar := size * (1 - prob) / (prob * prob)
	momentTest(t, "NegBinomial", func() float64 { return float64(r.NegBinomial(size, prob)) },
		wantMean, wantVar, 0.04)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(34)
	alpha := []float64{1, 2, 3, 0.5}
	out := make([]float64, 4)
	for i := 0; i < 1000; i++ {
		r.Dirichlet(alpha, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Fatal("negative Dirichlet component")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Dirichlet sums to %v", sum)
		}
	}
}

func TestMultinomialConservation(t *testing.T) {
	r := New(35)
	w := []float64{0.1, 0.4, 0.2, 0.3}
	for i := 0; i < 500; i++ {
		n := r.Intn(1000)
		counts := r.Multinomial(n, w)
		total := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatal("negative multinomial count")
			}
			total += c
		}
		if total != n {
			t.Fatalf("multinomial total %d != n %d", total, n)
		}
	}
}

func TestMultinomialProportions(t *testing.T) {
	r := New(36)
	w := []float64{1, 3}
	counts := r.Multinomial(400000, w)
	frac := float64(counts[0]) / 400000
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("multinomial proportion %v, want 0.25", frac)
	}
}

func TestMultinomialZeroWeightGetsNothing(t *testing.T) {
	r := New(37)
	counts := r.Multinomial(1000, []float64{0, 1, 0})
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight categories received counts: %v", counts)
	}
	if counts[1] != 1000 {
		t.Fatalf("nonzero category got %d of 1000", counts[1])
	}
}

func TestGammaPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(-1, 1) did not panic")
		}
	}()
	New(1).Gamma(-1, 1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100000, 0.01)
	}
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(2.5, 1.0)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := New(99)
	r.Normal() // populate the spare slot
	r.Uint64()
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Stream{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Label() != r.Label() {
		t.Fatal("label lost in round trip")
	}
	for i := 0; i < 200; i++ {
		if r.Uint64() != restored.Uint64() {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
		if r.Normal() != restored.Normal() {
			t.Fatalf("restored normal stream diverged at draw %d", i)
		}
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	restored := &Stream{}
	if err := restored.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated state accepted")
	}
}
