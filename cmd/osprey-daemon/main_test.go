package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"osprey/internal/aero"
)

// TestDurabilityRoundTrip is the acceptance check for -data-dir: start the
// daemon with a WAL, let it ingest real data, SIGKILL it mid-flight, boot
// a second daemon on the same directory, and require the recovered
// metadata — UUIDs, version counts, flow registrations — to contain
// everything the first daemon had committed, without duplicated flows.
func TestDurabilityRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("process round-trip in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "osprey-daemon")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build daemon: %v", err)
	}
	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr + "/metadata"

	// Run 1: fast ticks so feeds advance and polls commit versions.
	run1 := exec.Command(bin, "-addr", addr, "-tick", "300ms", "-fast", "-data-dir", dataDir)
	run1.Stderr = os.Stderr
	if err := run1.Start(); err != nil {
		t.Fatal(err)
	}
	defer run1.Process.Kill()

	waitHealthy(t, base, 30*time.Second)
	// Wait until at least one ingested version and one provenance-bearing
	// flow run are committed.
	waitFor(t, 60*time.Second, func() bool {
		data := listData(t, base)
		versions := 0
		for _, d := range data {
			versions += len(d.Versions)
		}
		return len(data) > 0 && versions >= 2
	})
	before := listData(t, base)
	beforeFlows := listFlows(t, base)

	// Crash hard: SIGKILL, no shutdown hooks, no final compaction.
	if err := run1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = run1.Wait()

	// Run 2: huge tick so recovery itself, not new polls, supplies state.
	addr2 := freeAddr(t)
	base2 := "http://" + addr2 + "/metadata"
	run2 := exec.Command(bin, "-addr", addr2, "-tick", "1h", "-fast", "-data-dir", dataDir)
	run2.Stderr = os.Stderr
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		run2.Process.Kill()
		run2.Wait()
	}()
	waitHealthy(t, base2, 30*time.Second)

	after := listData(t, base2)
	afterByUUID := map[string]*aero.DataRecord{}
	for _, d := range after {
		afterByUUID[d.UUID] = d
	}
	// Every committed record survives with identity, name, and at least
	// the committed versions (a poll may have landed between our snapshot
	// and the kill; fsync=always means nothing observed can be lost).
	for _, d := range before {
		got, ok := afterByUUID[d.UUID]
		if !ok {
			t.Fatalf("data %s (%s) lost across crash", d.UUID, d.Name)
		}
		if got.Name != d.Name || got.SourceURL != d.SourceURL {
			t.Fatalf("data %s identity changed: %+v vs %+v", d.UUID, got, d)
		}
		if len(got.Versions) < len(d.Versions) {
			t.Fatalf("data %s versions %d < committed %d", d.UUID, len(got.Versions), len(d.Versions))
		}
		for i, v := range d.Versions {
			if got.Versions[i].Checksum != v.Checksum || got.Versions[i].Num != v.Num {
				t.Fatalf("data %s version %d mutated: %+v vs %+v", d.UUID, i, got.Versions[i], v)
			}
		}
	}
	// Flow registrations are adopted, not duplicated: same IDs, same
	// count, run counters at least as high as committed.
	afterFlows := listFlows(t, base2)
	if len(afterFlows) != len(beforeFlows) {
		t.Fatalf("flow count changed across crash: %d vs %d (duplicated registrations?)", len(afterFlows), len(beforeFlows))
	}
	flowByID := map[string]*aero.FlowRecord{}
	for _, f := range afterFlows {
		flowByID[f.ID] = f
	}
	for _, f := range beforeFlows {
		got, ok := flowByID[f.ID]
		if !ok {
			t.Fatalf("flow %s (%s) lost across crash", f.ID, f.Name)
		}
		if got.Name != f.Name || got.Kind != f.Kind {
			t.Fatalf("flow %s changed: %+v vs %+v", f.ID, got, f)
		}
		if got.Runs < f.Runs {
			t.Fatalf("flow %s runs went backward: %d < %d", f.ID, got.Runs, f.Runs)
		}
	}
	// Provenance for a versioned output survives.
	for _, d := range before {
		if len(d.Versions) == 0 {
			continue
		}
		var edges []aero.ProvenanceEdge
		getJSON(t, base2+"/data/"+d.UUID+"/provenance", &edges)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("daemon at %s not healthy after %v", base, timeout)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func listData(t *testing.T, base string) []*aero.DataRecord {
	t.Helper()
	var out []*aero.DataRecord
	getJSON(t, base+"/data", &out)
	return out
}

func listFlows(t *testing.T, base string) []*aero.FlowRecord {
	t.Helper()
	var out []*aero.FlowRecord
	getJSON(t, base+"/flows", &out)
	return out
}
