// Command osprey-daemon runs the paper's use case 1 as an always-on
// service: the four simulated plant feeds advance on a clock, AERO timers
// poll them, analyses and the aggregation trigger automatically, and a
// status endpoint exposes what the platform is doing — the "fully
// automated ... timely model-based epidemiological analyses" mode of §2.2.
//
// Usage:
//
//	osprey-daemon [-addr 127.0.0.1:7524] [-tick 10s] [-fast]
//	              [-data-dir DIR] [-fsync always|interval|never]
//	              [-task-retention 1h]
//	              [-shards N] [-shard-addrs HOST:PORT,...]
//
// With -data-dir, the AERO metadata store and the EMEWS task database are
// backed by write-ahead logs under DIR (DIR/aero, DIR/emews): every
// mutation is persisted before it is applied, and a restart recovers the
// full state — data versions, provenance, flow registrations (adopted by
// name, not duplicated), ID counters, and tasks, with tasks that were
// Running at crash time requeued since worker leases do not survive.
// POST /metadata/admin/compact (or `ospreyctl compact`) snapshots both
// stores and truncates their logs.
//
// With -shards N (N >= 2, requires -data-dir) the daemon additionally
// serves an N-shard EMEWS task-substrate group under DIR/emews-shards:
// one WAL-backed task database per shard, each on its own wire-v2 TCP
// listener carrying its shard identity, ready for emews.DialShardGroup
// clients. Listeners bind ephemeral loopback ports by default;
// -shard-addrs pins them. GET /shards reports per-shard addresses and
// occupancy (`ospreyctl shards` renders it).
//
// Endpoints:
//
//	GET /            status summary (flows, runs, current simulated day)
//	GET /ensemble    latest population-weighted ensemble R(t) (JSON)
//	GET /plot        latest ensemble ASCII plot
//	GET /events      AERO event trace
//	GET /topology    GraphViz DOT of the workflow
//	GET /shards      task-substrate shard group status (JSON; 404 when disabled)
//	GET /metrics     observability snapshot (counters/gauges/histograms, JSON)
//	GET /trace       recent spans (ring buffer, JSON)
//	GET /metadata/…  the embedded AERO metadata API
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"osprey"
	"osprey/internal/aero"
	"osprey/internal/emews"
	"osprey/internal/obs"
	"osprey/internal/wal"
)

// autoCompactBytes is the per-log replay debt that triggers a background
// compaction on the daemon tick.
const autoCompactBytes = 32 << 20

// probeSubstrate round-trips a few trivial tasks through the platform's
// EMEWS task DB so the task substrate is exercised (and its metrics are
// live) even though use case 1 routes its MCMC through the batch
// scheduler. Any failure here means model-exploration workloads would not
// run, which is worth knowing before one is submitted.
func probeSubstrate(db *emews.DB, n int) error {
	payloads := make([]string, n)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("probe-%d", i)
	}
	futures, err := db.SubmitBatch("daemon.probe", 0, payloads)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, f := range futures {
		out, err := f.Result(ctx)
		if err != nil {
			return fmt.Errorf("probe task %d: %w", i, err)
		}
		if out != payloads[i] {
			return fmt.Errorf("probe task %d: got %q, want %q", i, out, payloads[i])
		}
	}
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("osprey-daemon: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7524", "status/metadata listen address")
		tick       = flag.Duration("tick", 10*time.Second, "wall-clock duration of one simulated day")
		fast       = flag.Bool("fast", false, "reduced MCMC settings (quicker cycles)")
		dataDir    = flag.String("data-dir", "", "enable WAL persistence under this directory")
		fsyncMode  = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		retention  = flag.Duration("task-retention", time.Hour, "prune terminal tasks older than this each tick (0 disables)")
		shards     = flag.Int("shards", 0, "serve a sharded task-substrate group of this size (>= 2; requires -data-dir)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated pinned listen addresses for the shard group (default: ephemeral ports)")
	)
	flag.Parse()
	if *shards == 1 || *shards < 0 {
		log.Fatal("-shards must be 0 (disabled) or >= 2")
	}
	if *shards > 1 && *dataDir == "" {
		log.Fatal("-shards requires -data-dir (the shard group is WAL-backed)")
	}

	// With -data-dir both stateful cores recover from their write-ahead
	// logs; without it they are the plain in-memory implementations.
	var (
		store    *aero.Store
		taskDB   *emews.DB
		aeroLog  *wal.Log
		emewsLog *wal.Log
		group    *emews.ShardGroup
	)
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		aeroLog, err = wal.Open(filepath.Join(*dataDir, "aero"),
			wal.Options{Name: "wal.aero", Policy: policy, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		store, err = aero.OpenStore(aeroLog)
		if err != nil {
			log.Fatalf("recover metadata store: %v", err)
		}
		emewsLog, err = wal.Open(filepath.Join(*dataDir, "emews"),
			wal.Options{Name: "wal.emews", Policy: policy, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		taskDB, err = emews.OpenDB(emewsLog)
		if err != nil {
			log.Fatalf("recover task database: %v", err)
		}
		data, _ := store.ListData()
		flows, _ := store.ListFlows()
		st := taskDB.Stats()
		log.Printf("recovered from %s in %s: %d data records, %d flows, %d tasks (%d queued)",
			*dataDir, time.Since(start).Round(time.Millisecond), len(data), len(flows), st.Submitted, st.Queued)
		if *shards > 1 {
			var addrs []string
			if *shardAddrs != "" {
				addrs = strings.Split(*shardAddrs, ",")
			}
			group, err = emews.OpenShardGroup(filepath.Join(*dataDir, "emews-shards"), *shards, addrs,
				wal.Options{Name: "wal.shards", Policy: policy, Logf: log.Printf})
			if err != nil {
				log.Fatalf("open shard group: %v", err)
			}
			defer group.Close()
			reapCtx, reapStop := context.WithCancel(context.Background())
			defer reapStop()
			for i := 0; i < group.Shards(); i++ {
				group.DB(i).StartReaper(reapCtx, time.Second)
			}
			log.Printf("task shard group: %d shards on %v", group.Shards(), group.Addrs())
		}
	} else {
		store = aero.NewStore()
		taskDB = emews.NewDB()
	}
	// Registered before the platform so it runs after p.Shutdown (LIFO):
	// a final compaction bounds the next boot's replay, then the logs
	// close.
	defer func() {
		if aeroLog == nil {
			return
		}
		if err := store.Compact(); err != nil {
			log.Printf("compact aero: %v", err)
		}
		if err := taskDB.Compact(); err != nil {
			log.Printf("compact emews: %v", err)
		}
		_ = aeroLog.Close()
		_ = emewsLog.Close()
	}()

	p, err := osprey.New(osprey.Config{Identity: "daemon", Nodes: 8, Meta: store, TaskDB: taskDB})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()

	gopt := osprey.GoldsteinOptions{}
	if *fast {
		gopt = osprey.GoldsteinOptions{Iterations: 300, BurnIn: 500, Thin: 2}
	}
	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
		ScenarioDays: 365,
		StartDay:     60,
		Goldstein:    gopt,
		PollInterval: *tick, // AERO timers poll each feed once per tick
		Seed:         uint64(time.Now().UnixNano()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wp.Close()
	log.Printf("pipeline registered: plants %v, 1 simulated day per %v", wp.PlantNames(), *tick)

	// EMEWS substrate health probe: a small local pool echoes probe
	// payloads; one round-trip at startup, then one per tick.
	probePool, err := emews.StartLocalPool(p.TaskDB, "daemon.probe", 2,
		func(ctx context.Context, payload string) (string, error) { return payload, nil })
	if err != nil {
		log.Fatal(err)
	}
	defer probePool.Stop()
	if err := probeSubstrate(p.TaskDB, 4); err != nil {
		log.Fatalf("EMEWS substrate probe failed: %v", err)
	}
	log.Print("EMEWS substrate probe ok")

	// The clock: each tick advances every feed by one day; the flows'
	// own timers notice the update on their next poll.
	day := 60
	go func() {
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		for range ticker.C {
			wp.Advance(1)
			if err := probeSubstrate(p.TaskDB, 2); err != nil {
				log.Printf("EMEWS substrate probe failed: %v", err)
			}
			// Housekeeping: bound task-DB memory and WAL replay debt.
			if *retention > 0 {
				if n, err := p.TaskDB.Prune(*retention); err != nil {
					log.Printf("prune tasks: %v", err)
				} else if n > 0 {
					log.Printf("pruned %d terminal tasks older than %v", n, *retention)
				}
			}
			for _, l := range []*wal.Log{aeroLog, emewsLog} {
				if l == nil || l.Size() < autoCompactBytes {
					continue
				}
				compact := store.Compact
				if l == emewsLog {
					compact = taskDB.Compact
				}
				if err := compact(); err != nil {
					log.Printf("auto-compact %s: %v", l.Dir(), err)
				} else {
					log.Printf("auto-compacted %s", l.Dir())
				}
			}
			day++
			if day >= 365 {
				log.Print("scenario exhausted; feeds frozen")
				return
			}
		}
	}()

	mux := http.NewServeMux()
	metaSrv := aero.NewServer(store)
	if *dataDir != "" {
		metaSrv.SetCompact(func() error {
			if err := store.Compact(); err != nil {
				return err
			}
			return taskDB.Compact()
		})
	}
	mux.Handle("/metadata/", http.StripPrefix("/metadata", metaSrv))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "osprey-daemon: simulated day %d\n\n", day)
		flows, err := store.ListFlows()
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		fmt.Fprintf(w, "%-14s %-22s %-10s %s\n", "ID", "NAME", "KIND", "RUNS")
		for _, f := range flows {
			fmt.Fprintf(w, "%-14s %-22s %-10s %d\n", f.ID, f.Name, f.Kind, f.Runs)
		}
		fmt.Fprintf(w, "\naggregate runs: %d\n", wp.Aggregate.Runs())
		fmt.Fprint(w, "\nendpoints: /ensemble /plot /events /topology /metrics /trace /metadata/...\n")
	})
	mux.HandleFunc("/ensemble", func(w http.ResponseWriter, r *http.Request) {
		data, _, err := p.AERO.FetchLatest(wp.Aggregate.OutputUUIDs[0], p.Storage)
		if err != nil {
			http.Error(w, "no ensemble yet: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/plot", func(w http.ResponseWriter, r *http.Request) {
		plots, err := wp.LatestPlots()
		if err != nil {
			http.Error(w, "no plots yet: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, plots["ensemble"])
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		for _, e := range p.AERO.Events() {
			fmt.Fprintf(w, "%s %-16s %-14s %s\n", e.Time.Format(time.RFC3339), e.Kind, e.Flow, e.Detail)
		}
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		dot, err := aero.ExportDOT(store, "osprey-daemon workflow")
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		fmt.Fprint(w, dot)
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		if group == nil {
			http.Error(w, "sharding disabled (start the daemon with -shards >= 2)", http.StatusNotFound)
			return
		}
		type member struct {
			Shard int         `json:"shard"`
			Addr  string      `json:"addr"`
			Dir   string      `json:"dir"`
			Stats emews.Stats `json:"stats"`
		}
		st := struct {
			Shards  int         `json:"shards"`
			Members []member    `json:"members"`
			Totals  emews.Stats `json:"totals"`
		}{Shards: group.Shards(), Totals: group.Stats()}
		for i := 0; i < group.Shards(); i++ {
			st.Members = append(st.Members, member{
				Shard: i, Addr: group.Addrs()[i], Dir: group.Dir(i), Stats: group.DB(i).Stats(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/trace", obs.DefaultTracer().Handler())

	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("status on http://%s", *addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	_ = srv.Close()
}
