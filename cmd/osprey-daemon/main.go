// Command osprey-daemon runs the paper's use case 1 as an always-on
// service: the four simulated plant feeds advance on a clock, AERO timers
// poll them, analyses and the aggregation trigger automatically, and a
// status endpoint exposes what the platform is doing — the "fully
// automated ... timely model-based epidemiological analyses" mode of §2.2.
//
// Usage:
//
//	osprey-daemon [-addr 127.0.0.1:7524] [-tick 10s] [-fast]
//
// Endpoints:
//
//	GET /            status summary (flows, runs, current simulated day)
//	GET /ensemble    latest population-weighted ensemble R(t) (JSON)
//	GET /plot        latest ensemble ASCII plot
//	GET /events      AERO event trace
//	GET /topology    GraphViz DOT of the workflow
//	GET /metrics     observability snapshot (counters/gauges/histograms, JSON)
//	GET /trace       recent spans (ring buffer, JSON)
//	GET /metadata/…  the embedded AERO metadata API
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"osprey"
	"osprey/internal/aero"
	"osprey/internal/emews"
	"osprey/internal/obs"
)

// probeSubstrate round-trips a few trivial tasks through the platform's
// EMEWS task DB so the task substrate is exercised (and its metrics are
// live) even though use case 1 routes its MCMC through the batch
// scheduler. Any failure here means model-exploration workloads would not
// run, which is worth knowing before one is submitted.
func probeSubstrate(db *emews.DB, n int) error {
	payloads := make([]string, n)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("probe-%d", i)
	}
	futures, err := db.SubmitBatch("daemon.probe", 0, payloads)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, f := range futures {
		out, err := f.Result(ctx)
		if err != nil {
			return fmt.Errorf("probe task %d: %w", i, err)
		}
		if out != payloads[i] {
			return fmt.Errorf("probe task %d: got %q, want %q", i, out, payloads[i])
		}
	}
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("osprey-daemon: ")
	var (
		addr = flag.String("addr", "127.0.0.1:7524", "status/metadata listen address")
		tick = flag.Duration("tick", 10*time.Second, "wall-clock duration of one simulated day")
		fast = flag.Bool("fast", false, "reduced MCMC settings (quicker cycles)")
	)
	flag.Parse()

	store := aero.NewStore()
	p, err := osprey.New(osprey.Config{Identity: "daemon", Nodes: 8, Meta: store})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()

	gopt := osprey.GoldsteinOptions{}
	if *fast {
		gopt = osprey.GoldsteinOptions{Iterations: 300, BurnIn: 500, Thin: 2}
	}
	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
		ScenarioDays: 365,
		StartDay:     60,
		Goldstein:    gopt,
		PollInterval: *tick, // AERO timers poll each feed once per tick
		Seed:         uint64(time.Now().UnixNano()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wp.Close()
	log.Printf("pipeline registered: plants %v, 1 simulated day per %v", wp.PlantNames(), *tick)

	// EMEWS substrate health probe: a small local pool echoes probe
	// payloads; one round-trip at startup, then one per tick.
	probePool, err := emews.StartLocalPool(p.TaskDB, "daemon.probe", 2,
		func(ctx context.Context, payload string) (string, error) { return payload, nil })
	if err != nil {
		log.Fatal(err)
	}
	defer probePool.Stop()
	if err := probeSubstrate(p.TaskDB, 4); err != nil {
		log.Fatalf("EMEWS substrate probe failed: %v", err)
	}
	log.Print("EMEWS substrate probe ok")

	// The clock: each tick advances every feed by one day; the flows'
	// own timers notice the update on their next poll.
	day := 60
	go func() {
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		for range ticker.C {
			wp.Advance(1)
			if err := probeSubstrate(p.TaskDB, 2); err != nil {
				log.Printf("EMEWS substrate probe failed: %v", err)
			}
			day++
			if day >= 365 {
				log.Print("scenario exhausted; feeds frozen")
				return
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/metadata/", http.StripPrefix("/metadata", aero.NewServer(store)))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "osprey-daemon: simulated day %d\n\n", day)
		flows, err := store.ListFlows()
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		fmt.Fprintf(w, "%-14s %-22s %-10s %s\n", "ID", "NAME", "KIND", "RUNS")
		for _, f := range flows {
			fmt.Fprintf(w, "%-14s %-22s %-10s %d\n", f.ID, f.Name, f.Kind, f.Runs)
		}
		fmt.Fprintf(w, "\naggregate runs: %d\n", wp.Aggregate.Runs())
		fmt.Fprint(w, "\nendpoints: /ensemble /plot /events /topology /metrics /trace /metadata/...\n")
	})
	mux.HandleFunc("/ensemble", func(w http.ResponseWriter, r *http.Request) {
		data, _, err := p.AERO.FetchLatest(wp.Aggregate.OutputUUIDs[0], p.Storage)
		if err != nil {
			http.Error(w, "no ensemble yet: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/plot", func(w http.ResponseWriter, r *http.Request) {
		plots, err := wp.LatestPlots()
		if err != nil {
			http.Error(w, "no plots yet: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, plots["ensemble"])
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		for _, e := range p.AERO.Events() {
			fmt.Fprintf(w, "%s %-16s %-14s %s\n", e.Time.Format(time.RFC3339), e.Kind, e.Flow, e.Detail)
		}
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		dot, err := aero.ExportDOT(store, "osprey-daemon workflow")
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		fmt.Fprint(w, dot)
	})
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/trace", obs.DefaultTracer().Handler())

	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("status on http://%s", *addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	_ = srv.Close()
}
