// osprey-loadgen drives the deterministic load-generation and chaos
// harness (internal/loadgen) against a real in-process OSPREY service
// stack and writes a JSON run report.
//
//	osprey-loadgen -seed 42 -duration 30s -rate 150 -workers 8 -faults default -runs 2 -out report.json
//	osprey-loadgen -shards 3 -faults shard-failover -runs 2 -out report.json
//	osprey-loadgen -tenants 3 -faults tenant -runs 2 -out report.json
//
// With -shards N >= 2 the single task stack is replaced by an N-shard
// replicated group (one WAL-backed primary plus a warm follower per
// shard) and the "shard-failover" schedule kills primaries mid-run,
// promoting their followers. With -tenants N >= 1 the AERO side runs
// multi-tenant: bearer-token auth, per-tenant quotas with one noisy
// neighbor, private streams, live isolation probes, and a streaming
// watch subscription per tenant. With -runs N > 1 the harness runs N
// times with the same seed and the
// workload digests must match across runs — the determinism contract.
// Exit codes: 0 all runs passed, 1 an invariant failed or determinism
// broke, 2 usage or infrastructure error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"osprey/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("osprey-loadgen", flag.ExitOnError)
	var (
		seed     = fs.Uint64("seed", 42, "workload seed (same seed + shape = same plan)")
		duration = fs.Duration("duration", 10*time.Second, "workload window")
		rate     = fs.Float64("rate", 100, "task submissions per second")
		workers  = fs.Int("workers", 6, "worker goroutines")
		closed   = fs.Bool("closed", false, "closed-loop pacing (in-flight window instead of wall clock)")
		popBatch = fs.Int("pop-batch", 4, "tasks leased per worker round trip (1 = single-op wire path)")
		window   = fs.Int("window", 0, "closed-loop in-flight cap (default 2x workers)")
		ingest   = fs.Float64("ingest-rate", 10, "AERO data-version ingests per second, per tenant in tenant mode (<0 disables)")
		shards   = fs.Int("shards", 1, "task-substrate shards (>= 2 runs a replicated shard group with warm followers)")
		pinned   = fs.Bool("pinned-ports", false, "rebind fixed ports across in-run reboots (default: fresh ephemeral ports)")
		tenants  = fs.Int("tenants", 0, "multi-tenant AERO mode: tenants with bearer tokens, per-tenant quotas, private streams, streaming watches (0 = legacy single-tenant)")
		noisyF   = fs.Float64("noisy-factor", 3, "noisy tenant's ingest-rate multiplier (tenant mode)")
		quota    = fs.Float64("tenant-quota", 0, "per-tenant ingest quota in req/s (default 2x ingest-rate)")
		burst    = fs.Float64("tenant-burst", 0, "per-tenant quota burst (default 12)")
		faults   = fs.String("faults", "default", `fault schedule: "default", "shard-failover", "tenant", "none", or DSL like "5s:kill;8s:refuse:1s;12s:latency:50ms:2s;15s:pool-crash:500ms;20s:crash;25s:torn-crash;30s:shard-failover:1"`)
		dataDir  = fs.String("data-dir", "", "WAL root (default: temp dir, removed on pass)")
		out      = fs.String("out", "", "write the JSON report here (default stdout)")
		runs     = fs.Int("runs", 1, "repeat the run N times and require identical workload digests")
		verbose  = fs.Bool("v", false, "log faults and recovery events to stderr")
	)
	fs.Parse(os.Args[1:])
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "osprey-loadgen: -runs must be >= 1")
		return 2
	}
	schedule, err := loadgen.ParseFaultsFor(*faults, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osprey-loadgen:", err)
		return 2
	}
	cfg := loadgen.Config{
		Seed:        *seed,
		Duration:    *duration,
		Rate:        *rate,
		Workers:     *workers,
		Closed:      *closed,
		Window:      *window,
		PopBatch:    *popBatch,
		IngestRate:  *ingest,
		Shards:      *shards,
		PinnedPorts: *pinned,
		Tenants:     *tenants,
		NoisyFactor: *noisyF,
		TenantQuota: *quota,
		TenantBurst: *burst,
		DataDir:     *dataDir,
		Faults:      schedule,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	exit := 0
	var last *loadgen.Report
	for i := 0; i < *runs; i++ {
		report, err := loadgen.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osprey-loadgen: run %d/%d: %v\n", i+1, *runs, err)
			return 2
		}
		topo := fmt.Sprintf("crashes=%d", report.Totals.Crashes)
		if report.Shards > 1 {
			topo = fmt.Sprintf("shards=%d failovers=%d", report.Shards, report.Failovers)
		}
		if report.TenantCount > 0 {
			var throttled int64
			for _, tr := range report.Tenants {
				throttled += tr.Throttled
			}
			topo += fmt.Sprintf(" tenants=%d throttled=%d probes=%d", report.TenantCount, throttled, report.ProbeChecks)
		}
		fmt.Fprintf(os.Stderr, "osprey-loadgen: run %d/%d: pass=%v digest=%s tasks=%d complete=%d failed=%d %s throughput=%.1f/s\n",
			i+1, *runs, report.Pass, report.Workload.Digest[:12], report.Totals.Submitted,
			report.Totals.Complete, report.Totals.Failed, topo, report.ThroughputPerSec)
		if !report.Pass {
			exit = 1
			for _, f := range report.FailedInvariants() {
				fmt.Fprintln(os.Stderr, "osprey-loadgen: invariant failed:", f)
			}
			if report.DataDir != "" {
				fmt.Fprintln(os.Stderr, "osprey-loadgen: data dir kept at", report.DataDir)
			}
		}
		if last != nil && report.Workload.Digest != last.Workload.Digest {
			fmt.Fprintf(os.Stderr, "osprey-loadgen: determinism violation: digest %s != %s\n",
				report.Workload.Digest, last.Workload.Digest)
			exit = 1
		}
		last = report
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osprey-loadgen:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := last.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "osprey-loadgen:", err)
		return 2
	}
	return exit
}
