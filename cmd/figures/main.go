// Command figures regenerates every table and figure of the paper's
// evaluation from the reproduced system, writing CSV data and ASCII
// renderings under an output directory.
//
// Usage:
//
//	figures [-out out] [-quick] [-fig 1-5] [-table 1] [-exp name] [-all]
//
// With -all (the default when no selector is given) every artifact is
// produced. -quick reduces MCMC iterations and GSA budgets so the full set
// completes in a couple of minutes on a laptop; drop it for
// publication-scale settings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"osprey"
	"osprey/internal/abm"
	"osprey/internal/aero"
	"osprey/internal/metarvm"
	"osprey/internal/music"
	"osprey/internal/plot"
	"osprey/internal/sobolidx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		outDir = flag.String("out", "out", "output directory")
		quick  = flag.Bool("quick", false, "reduced settings for fast runs")
		fig    = flag.Int("fig", 0, "regenerate one figure (1-5)")
		table  = flag.Int("table", 0, "regenerate one table (1)")
		exp    = flag.String("exp", "", "regenerate one named experiment (utilization | time-to-solution)")
		all    = flag.Bool("all", false, "regenerate everything")
	)
	flag.Parse()

	if *fig == 0 && *table == 0 && *exp == "" {
		*all = true
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	g := &generator{out: *outDir, quick: *quick}

	run := func(name string, fn func() error) {
		start := time.Now()
		log.Printf("generating %s ...", name)
		if err := fn(); err != nil {
			log.Fatalf("%s failed: %v", name, err)
		}
		log.Printf("%s done in %v", name, time.Since(start).Round(time.Millisecond))
	}
	if *all || *table == 1 {
		run("table1", g.table1)
	}
	if *all || *fig == 1 {
		run("figure1", g.figure1)
	}
	if *all || *fig == 2 {
		run("figure2", g.figure2)
	}
	if *all || *fig == 3 {
		run("figure3", g.figure3)
	}
	if *all || *fig == 4 {
		run("figure4", g.figure4)
	}
	if *all || *fig == 5 {
		run("figure5", g.figure5)
	}
	if *all || *exp == "utilization" {
		run("utilization", g.utilization)
	}
	if *all || *exp == "time-to-solution" {
		run("time-to-solution", g.timeToSolution)
	}
}

// timeToSolution makes the §3.3 claim a regenerable artifact: on the
// expensive agent-based model, compare MUSIC's model-run count and wall
// time against a direct pick–freeze Sobol estimate of similar quality.
func (g *generator) timeToSolution() error {
	space := metarvm.GSAParameterSpace()
	const modelSeed = 11

	budget := 60
	directN := 48 // direct estimator base sample (48*(5+2)=336 runs)
	if !g.quick {
		budget = 120
		directN = 64
	}

	musicStart := time.Now()
	alg, err := music.New(music.Options{
		Space: space, InitialDesign: 20, Budget: budget, Seed: 4,
	})
	if err != nil {
		return err
	}
	musicRuns := 0
	if err := music.RunSequential(alg, func(x []float64) (float64, error) {
		musicRuns++
		return abm.EvaluateGSA(x, modelSeed)
	}); err != nil {
		return err
	}
	musicElapsed := time.Since(musicStart)
	musicIdx, err := alg.Indices()
	if err != nil {
		return err
	}

	directStart := time.Now()
	directRuns := 0
	direct, err := sobolidx.Estimate(func(u []float64) float64 {
		directRuns++
		y, err := abm.EvaluateGSA(space.Scale(u), modelSeed)
		if err != nil {
			panic(err) // validated config; cannot fail
		}
		return y
	}, space.Dim(), sobolidx.Options{N: directN, Clamp01: true})
	if err != nil {
		return err
	}
	directElapsed := time.Since(directStart)

	var sb strings.Builder
	sb.WriteString("Time to solution on the expensive agent-based model (§3.3)\n\n")
	rows := [][]string{
		{"MUSIC (surrogate)", fmt.Sprintf("%d", musicRuns),
			musicElapsed.Round(time.Millisecond).String()},
		{"direct Saltelli", fmt.Sprintf("%d", directRuns),
			directElapsed.Round(time.Millisecond).String()},
	}
	if err := plot.Table(&sb, []string{"Method", "Model runs", "Wall time"}, rows); err != nil {
		return err
	}
	sb.WriteString("\nFirst-order index estimates:\n")
	idxRows := [][]string{}
	for j, name := range space.Names() {
		idxRows = append(idxRows, []string{name,
			fmt.Sprintf("%.3f", musicIdx[j]), fmt.Sprintf("%.3f", direct.First[j])})
	}
	if err := plot.Table(&sb, []string{"Parameter", "MUSIC", "direct"}, idxRows); err != nil {
		return err
	}
	fmt.Fprintf(&sb, "\nspeedup %.1fx with %.1fx fewer model runs\n",
		float64(directElapsed)/float64(musicElapsed), float64(directRuns)/float64(musicRuns))
	fmt.Println(sb.String())
	return g.write("time_to_solution.txt", sb.String())
}

// utilization runs the §3.2 experiment: the same replicated MUSIC study
// driven sequentially and interleaved over one worker pool.
func (g *generator) utilization() error {
	runMode := func(interleaved bool) (*osprey.GSAResult, error) {
		p, err := osprey.New(osprey.Config{Identity: "figures", Nodes: 8})
		if err != nil {
			return nil, err
		}
		defer p.Shutdown()
		cfg := osprey.GSAConfig{
			Replicates: 6,
			Nodes:      4, WorkersPerNode: 2,
			ModelDelay: 5 * time.Millisecond,
			Seed:       6,
		}
		cfg.Music.InitialDesign = 16
		cfg.Music.Budget = 48
		if !g.quick {
			cfg.Replicates = 10
			cfg.Music.InitialDesign = 30
			cfg.Music.Budget = 100
		}
		return osprey.RunGSA(p, cfg, interleaved)
	}
	seq, err := runMode(false)
	if err != nil {
		return err
	}
	inter, err := runMode(true)
	if err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("Worker-pool utilization: sequential vs interleaved MUSIC instances (§3.2)\n\n")
	rows := [][]string{
		{"sequential", seq.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", seq.Pool.UtilizationPct), fmt.Sprintf("%d", seq.Evaluations)},
		{"interleaved", inter.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", inter.Pool.UtilizationPct), fmt.Sprintf("%d", inter.Evaluations)},
	}
	if err := plot.Table(&sb, []string{"Mode", "Makespan", "Utilization", "Evaluations"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(&sb, "\nspeedup %.2fx; identical scientific results in both modes\n",
		float64(seq.Elapsed)/float64(inter.Elapsed))
	fmt.Println(sb.String())
	return g.write("utilization.txt", sb.String())
}

type generator struct {
	out   string
	quick bool
}

func (g *generator) write(name, content string) error {
	return os.WriteFile(filepath.Join(g.out, name), []byte(content), 0o644)
}

func (g *generator) goldstein() osprey.GoldsteinOptions {
	if g.quick {
		return osprey.GoldsteinOptions{Iterations: 300, BurnIn: 500, Thin: 2}
	}
	return osprey.GoldsteinOptions{Iterations: 1500, BurnIn: 2000, Thin: 2}
}

// table1 emits the GSA parameter ranges.
func (g *generator) table1() error {
	space := osprey.GSAParameterSpace()
	var rows [][]string
	for _, p := range space.Params {
		rows = append(rows, []string{p.Name, p.Description, fmt.Sprintf("(%g, %g)", p.Lo, p.Hi)})
	}
	var sb strings.Builder
	sb.WriteString("Table 1: MetaRVM model parameters and ranges for GSA\n\n")
	if err := plot.Table(&sb, []string{"Parameter", "Description", "Range"}, rows); err != nil {
		return err
	}
	fmt.Println(sb.String())
	return g.write("table1.txt", sb.String())
}

// figure1 runs the automated workflow once and emits the topology plus the
// AERO event trace — the executable counterpart of the Figure 1 diagram.
func (g *generator) figure1() error {
	p, err := osprey.New(osprey.Config{Identity: "figures", Nodes: 8})
	if err != nil {
		return err
	}
	defer p.Shutdown()
	wwcfg := osprey.WastewaterConfig{ScenarioDays: 120, StartDay: 80, Goldstein: g.goldstein(), Seed: 1}
	if g.quick {
		wwcfg.ScenarioDays, wwcfg.StartDay = 100, 70
	}
	wp, err := osprey.NewWastewaterPipeline(p, wwcfg)
	if err != nil {
		return err
	}
	defer wp.Close()
	if _, err := wp.PollAll(); err != nil {
		return err
	}
	wp.Advance(7)
	if _, err := wp.PollAll(); err != nil {
		return err
	}

	var sb strings.Builder
	sb.WriteString("Figure 1: automated multi-source wastewater R(t) workflow\n\n")
	sb.WriteString("Registered flows (metadata service):\n")
	flows, err := p.Meta.ListFlows()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, f := range flows {
		rows = append(rows, []string{f.ID, f.Name, f.Kind.String(),
			fmt.Sprintf("%d", len(f.InputUUIDs)), fmt.Sprintf("%d", len(f.OutputUUIDs)), fmt.Sprintf("%d", f.Runs)})
	}
	if err := plot.Table(&sb, []string{"ID", "Name", "Kind", "Inputs", "Outputs", "Runs"}, rows); err != nil {
		return err
	}
	sb.WriteString("\nAERO event trace:\n")
	for _, e := range p.AERO.Events() {
		fmt.Fprintf(&sb, "  %-16s %-14s %s\n", e.Kind, e.Flow, e.Detail)
	}
	fmt.Println(sb.String())
	// The machine-generated Figure 1 diagram (render with `dot -Tpng`).
	dot, err := aero.ExportDOT(p.Meta, "Automated multi-source wastewater R(t) workflow (Figure 1)")
	if err != nil {
		return err
	}
	if err := g.write("figure1_topology.dot", dot); err != nil {
		return err
	}
	return g.write("figure1_workflow.txt", sb.String())
}

// figure2 renders the four plant R(t) panels plus the ensemble panel.
func (g *generator) figure2() error {
	p, err := osprey.New(osprey.Config{Identity: "figures", Nodes: 8})
	if err != nil {
		return err
	}
	defer p.Shutdown()
	days := 120
	start := 110
	if g.quick {
		days, start = 100, 95
	}
	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
		ScenarioDays: days, StartDay: start, Goldstein: g.goldstein(), Seed: 2,
	})
	if err != nil {
		return err
	}
	defer wp.Close()
	if _, err := wp.PollAll(); err != nil {
		return err
	}

	truth := wp.TruthRt()
	var sb strings.Builder
	sb.WriteString("Figure 2: R(t) estimates per plant + population-weighted ensemble\n\n")
	var charts []*plot.Chart
	appendChart := func(title string, daysIdx []int, med, lo, hi []float64) *plot.Chart {
		x := make([]float64, len(daysIdx))
		tr := make([]float64, len(daysIdx))
		for i, d := range daysIdx {
			x[i] = float64(d)
			tr[i] = truth[d]
		}
		return &plot.Chart{
			Title: title, XLabel: "day", YLabel: "R(t)",
			Series: []plot.Series{{Name: "median", X: x, Y: med}, {Name: "truth", X: x, Y: tr}},
			Band:   &plot.Band{X: x, Lower: lo, Upper: hi},
		}
	}
	summaryRows := [][]string{}
	for _, name := range wp.PlantNames() {
		est, err := wp.LatestEstimate(name)
		if err != nil {
			return err
		}
		c := appendChart("R(t) — "+name, est.Days, est.Median, est.Lower, est.Upper)
		charts = append(charts, c)
		var csv strings.Builder
		if err := c.WriteCSV(&csv); err != nil {
			return err
		}
		if err := g.write("figure2_"+slug(name)+".csv", csv.String()); err != nil {
			return err
		}
		summaryRows = append(summaryRows, []string{name,
			fmt.Sprintf("%.2f", est.Coverage(truth, 14, len(est.Median)-7)),
			fmt.Sprintf("%.3f", est.MeanAbsError(truth, 14, len(est.Median)-7)),
			fmt.Sprintf("%.3f", est.BandWidth(14, len(est.Median)-7))})
	}
	ens, err := wp.LatestEnsemble()
	if err != nil {
		return err
	}
	ec := appendChart("R(t) — population-weighted ensemble", ens.Days, ens.Median, ens.Lower, ens.Upper)
	charts = append(charts, ec)
	var csv strings.Builder
	if err := ec.WriteCSV(&csv); err != nil {
		return err
	}
	if err := g.write("figure2_ensemble.csv", csv.String()); err != nil {
		return err
	}
	summaryRows = append(summaryRows, []string{"ensemble",
		fmt.Sprintf("%.2f", ens.Coverage(truth, 14, len(ens.Median)-7)),
		fmt.Sprintf("%.3f", ens.MeanAbsError(truth, 14, len(ens.Median)-7)),
		fmt.Sprintf("%.3f", ens.BandWidth(14, len(ens.Median)-7))})

	if err := plot.Facets(&sb, charts); err != nil {
		return err
	}
	sb.WriteString("\nValidation against the synthetic ground truth (days 14..end-7):\n")
	if err := plot.Table(&sb, []string{"Source", "95% coverage", "MAE", "band width"}, summaryRows); err != nil {
		return err
	}
	fmt.Println(sb.String())
	return g.write("figure2_panels.txt", sb.String())
}

// figure3 emits the compartment graph and a reference trajectory.
func (g *generator) figure3() error {
	var sb strings.Builder
	sb.WriteString("Figure 3: MetaRVM compartments and transitions\n\n")
	var rows [][]string
	for _, tr := range metarvm.Transitions() {
		rows = append(rows, []string{tr.From.String(), tr.To.String(), tr.Label})
	}
	if err := plot.Table(&sb, []string{"From", "To", "Parameters"}, rows); err != nil {
		return err
	}

	cfg := osprey.DefaultMetaRVMConfig()
	res, err := osprey.RunMetaRVM(cfg)
	if err != nil {
		return err
	}
	x := make([]float64, len(res.Days))
	hosp := make([]float64, len(res.Days))
	inf := make([]float64, len(res.Days))
	for i, d := range res.Days {
		x[i] = float64(d.Day)
		hosp[i] = float64(d.Total(metarvm.H))
		inf[i] = float64(d.Total(metarvm.Ia) + d.Total(metarvm.Ip) + d.Total(metarvm.Is))
	}
	c := &plot.Chart{
		Title: "Reference trajectory (nominal parameters)", XLabel: "day", YLabel: "count",
		Series: []plot.Series{{Name: "infectious", X: x, Y: inf}, {Name: "hospitalized", X: x, Y: hosp}},
	}
	sb.WriteString("\n")
	if err := c.Render(&sb); err != nil {
		return err
	}
	fmt.Fprintf(&sb, "\nQoI (cumulative hospitalizations, day %d): %d\n", cfg.Days, res.CumHospitalizations)
	fmt.Println(sb.String())
	return g.write("figure3_metarvm.txt", sb.String())
}

// figure4 produces the MUSIC vs PCE convergence curves at a fixed seed.
func (g *generator) figure4() error {
	space := osprey.GSAParameterSpace()
	budget := 300
	initial := 30
	if g.quick {
		budget, initial = 80, 20
	}
	const modelSeed = 11

	alg, err := music.New(music.Options{
		Space: space, InitialDesign: initial, Budget: budget, Seed: 4,
	})
	if err != nil {
		return err
	}
	if err := music.RunSequential(alg, func(x []float64) (float64, error) {
		return metarvm.EvaluateGSA(x, modelSeed)
	}); err != nil {
		return err
	}
	musicHist := alg.History()

	var sizes []int
	for n := 56; n <= budget; n += 4 {
		sizes = append(sizes, n)
	}
	pceCmp, err := osprey.RunPCEComparison(space, 4, modelSeed, sizes, 3)
	if err != nil {
		return err
	}

	var sb strings.Builder
	sb.WriteString("Figure 4: first-order Sobol index convergence, MUSIC vs PCE (fixed seed)\n\n")
	var charts []*plot.Chart
	for j, pname := range space.Names() {
		mx := make([]float64, len(musicHist))
		my := make([]float64, len(musicHist))
		for i, snap := range musicHist {
			mx[i] = float64(snap.N)
			my[i] = snap.Indices[j]
		}
		px := make([]float64, len(pceCmp.Sizes))
		py := make([]float64, len(pceCmp.Sizes))
		for i, n := range pceCmp.Sizes {
			px[i] = float64(n)
			py[i] = clamp01(pceCmp.Indices[i][j])
		}
		c := &plot.Chart{
			Title: "S1(" + pname + ")", XLabel: "samples", YLabel: "first-order index",
			Series: []plot.Series{{Name: "music", X: mx, Y: my}, {Name: "pce", X: px, Y: py}},
		}
		charts = append(charts, c)
		var csv strings.Builder
		if err := c.WriteCSV(&csv); err != nil {
			return err
		}
		if err := g.write("figure4_"+pname+".csv", csv.String()); err != nil {
			return err
		}
	}
	if err := plot.Facets(&sb, charts); err != nil {
		return err
	}

	// Reference indices: a direct pick–freeze Saltelli run on the
	// simulator itself at the same fixed seed, with a much larger budget
	// than either surrogate method gets. Convergence is then measured
	// against this common target rather than each method's own endpoint.
	refN := 1024
	if g.quick {
		refN = 256
	}
	ref, err := sobolidx.Estimate(func(u []float64) float64 {
		y, err := metarvm.EvaluateGSA(space.Scale(u), modelSeed)
		if err != nil {
			panic(err) // deterministic config; cannot fail after validation
		}
		return y
	}, space.Dim(), sobolidx.Options{N: refN, Clamp01: true})
	if err != nil {
		return err
	}

	fmt.Fprintf(&sb, "\nReference first-order indices (direct Saltelli on the simulator, %d base samples,\n%d model runs — the budget surrogates are meant to avoid):\n", refN, refN*(space.Dim()+2))
	refRow := [][]string{}
	for j, pname := range space.Names() {
		refRow = append(refRow, []string{pname, fmt.Sprintf("%.3f", ref.First[j])})
	}
	if err := plot.Table(&sb, []string{"Parameter", "S1 (reference)"}, refRow); err != nil {
		return err
	}

	sb.WriteString("\nConvergence to the reference (first N after which the estimate stays within ±0.05):\n")
	rows := [][]string{}
	for j, pname := range space.Names() {
		rows = append(rows, []string{
			pname,
			fmtStab(stabilizationVsRef(musicHist, j, ref.First[j])),
			fmtStab(pceStabilizationVsRef(pceCmp, j, ref.First[j])),
		})
	}
	if err := plot.Table(&sb, []string{"Parameter", "MUSIC", "PCE"}, rows); err != nil {
		return err
	}
	fmt.Println(sb.String())
	return g.write("figure4_convergence.txt", sb.String())
}

// figure5 runs the replicated study: 10 MUSIC instances, one per MetaRVM
// seed, interleaved over one EMEWS pool.
func (g *generator) figure5() error {
	p, err := osprey.New(osprey.Config{Identity: "figures", Nodes: 8})
	if err != nil {
		return err
	}
	defer p.Shutdown()
	cfg := osprey.GSAConfig{Replicates: 10, Seed: 5}
	cfg.Music.Budget = 300
	cfg.Music.InitialDesign = 30
	if g.quick {
		cfg.Replicates = 10
		cfg.Music.Budget = 70
		cfg.Music.InitialDesign = 20
	}
	res, err := osprey.RunGSA(p, cfg, true)
	if err != nil {
		return err
	}

	space := osprey.GSAParameterSpace()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: first-order Sobol indices across %d stochastic replicates\n", cfg.Replicates)
	fmt.Fprintf(&sb, "pool utilization %.1f%%, makespan %v, %d model evaluations\n\n",
		res.Pool.UtilizationPct, res.Elapsed.Round(time.Millisecond), res.Evaluations)
	var charts []*plot.Chart
	for j, pname := range space.Names() {
		c := &plot.Chart{Title: "S1(" + pname + ") by replicate", XLabel: "samples", YLabel: "index"}
		for r, hist := range res.Histories {
			x := make([]float64, len(hist))
			y := make([]float64, len(hist))
			for i, snap := range hist {
				x[i] = float64(snap.N)
				y[i] = snap.Indices[j]
			}
			c.Series = append(c.Series, plot.Series{Name: fmt.Sprintf("rep%d", r), X: x, Y: y})
		}
		charts = append(charts, c)
		var csv strings.Builder
		if err := c.WriteCSV(&csv); err != nil {
			return err
		}
		if err := g.write("figure5_"+pname+".csv", csv.String()); err != nil {
			return err
		}
	}
	if err := plot.Facets(&sb, charts); err != nil {
		return err
	}

	sb.WriteString("\nFinal indices per replicate:\n")
	headers := append([]string{"replicate"}, space.Names()...)
	rows := [][]string{}
	for r, idx := range res.FinalIndices {
		row := []string{fmt.Sprintf("%d", r)}
		for _, v := range idx {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	if err := plot.Table(&sb, headers, rows); err != nil {
		return err
	}
	fmt.Println(sb.String())
	return g.write("figure5_replicates.txt", sb.String())
}

func slug(name string) string {
	s := strings.ToLower(name)
	s = strings.ReplaceAll(s, "'", "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// stabilizationVsRef returns the first N after which the MUSIC curve stays
// within 0.05 of the reference value, or -1 if it never settles.
func stabilizationVsRef(hist []music.Snapshot, j int, ref float64) int {
	stable := -1
	for i := len(hist) - 1; i >= 0; i-- {
		if abs(hist[i].Indices[j]-ref) > 0.05 {
			break
		}
		stable = hist[i].N
	}
	return stable
}

func pceStabilizationVsRef(cmp *osprey.PCEComparison, j int, ref float64) int {
	stable := -1
	for i := len(cmp.Sizes) - 1; i >= 0; i-- {
		if abs(clamp01(cmp.Indices[i][j])-ref) > 0.05 {
			break
		}
		stable = cmp.Sizes[i]
	}
	return stable
}

func fmtStab(n int) string {
	if n < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
