// Command aero-server runs a standalone AERO metadata server over HTTP.
// Platforms point at it with osprey.Config.Meta = aero.NewClient(url),
// keeping the paper's separation between the central metadata service and
// the user-owned storage and compute where data actually lives.
//
// Usage:
//
//	aero-server [-addr 127.0.0.1:7523] [-state aero-state.json]
//	            [-data-dir DIR] [-fsync always|interval|never]
//
// When -state is given, the store is loaded from the file at startup (if it
// exists) and persisted on every mutation-free interval and at shutdown.
//
// -data-dir enables crash-safe write-ahead logging instead: every mutation
// is persisted before it is applied, restarts replay the log (tolerating a
// torn tail), and POST /admin/compact (`ospreyctl compact`) snapshots the
// store and truncates the log. -state and -data-dir are mutually exclusive.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"osprey/internal/aero"
	"osprey/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("aero-server: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:7523", "listen address")
		state     = flag.String("state", "", "optional JSON state file for persistence")
		dataDir   = flag.String("data-dir", "", "enable WAL persistence under this directory")
		fsyncMode = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
	)
	flag.Parse()
	if *state != "" && *dataDir != "" {
		log.Fatal("-state and -data-dir are mutually exclusive")
	}

	var store *aero.Store
	var walLog *wal.Log
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		walLog, err = wal.Open(*dataDir, wal.Options{Name: "wal.aero", Policy: policy, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		store, err = aero.OpenStore(walLog)
		if err != nil {
			log.Fatalf("recover store: %v", err)
		}
		data, _ := store.ListData()
		log.Printf("recovered %d data records from %s in %s", len(data), *dataDir, time.Since(start).Round(time.Millisecond))
	} else {
		store = aero.NewStore()
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := store.Load(f); err != nil {
				log.Fatalf("loading state: %v", err)
			}
			f.Close()
			log.Printf("loaded state from %s", *state)
		}
	}

	save := func() {
		if *state == "" {
			return
		}
		tmp := *state + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("save: %v", err)
			return
		}
		if err := store.Save(f); err != nil {
			log.Printf("save: %v", err)
			f.Close()
			return
		}
		f.Close()
		if err := os.Rename(tmp, *state); err != nil {
			log.Printf("save: %v", err)
		}
	}

	handler := aero.NewServer(store)
	if walLog != nil {
		handler.SetCompact(store.Compact)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("metadata service listening on http://%s", *addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	if *state != "" {
		go func() {
			for range time.Tick(30 * time.Second) {
				save()
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	save()
	if walLog != nil {
		if err := store.Compact(); err != nil {
			log.Printf("compact: %v", err)
		}
		_ = walLog.Close()
	}
	_ = srv.Close()
}
