// Command aero-server runs a standalone AERO metadata server over HTTP.
// Platforms point at it with osprey.Config.Meta = aero.NewClient(url),
// keeping the paper's separation between the central metadata service and
// the user-owned storage and compute where data actually lives.
//
// Usage:
//
//	aero-server [-addr 127.0.0.1:7523] [-state aero-state.json]
//
// When -state is given, the store is loaded from the file at startup (if it
// exists) and persisted on every mutation-free interval and at shutdown.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"osprey/internal/aero"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("aero-server: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:7523", "listen address")
		state = flag.String("state", "", "optional JSON state file for persistence")
	)
	flag.Parse()

	store := aero.NewStore()
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := store.Load(f); err != nil {
				log.Fatalf("loading state: %v", err)
			}
			f.Close()
			log.Printf("loaded state from %s", *state)
		}
	}

	save := func() {
		if *state == "" {
			return
		}
		tmp := *state + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("save: %v", err)
			return
		}
		if err := store.Save(f); err != nil {
			log.Printf("save: %v", err)
			f.Close()
			return
		}
		f.Close()
		if err := os.Rename(tmp, *state); err != nil {
			log.Printf("save: %v", err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: aero.NewServer(store)}
	go func() {
		log.Printf("metadata service listening on http://%s", *addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	if *state != "" {
		go func() {
			for range time.Tick(30 * time.Second) {
				save()
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	save()
	_ = srv.Close()
}
