// Command aero-server runs a standalone AERO metadata server over HTTP.
// Platforms point at it with osprey.Config.Meta = aero.NewClient(url),
// keeping the paper's separation between the central metadata service and
// the user-owned storage and compute where data actually lives.
//
// Usage:
//
//	aero-server [-addr 127.0.0.1:7523] [-state aero-state.json]
//	            [-data-dir DIR] [-fsync always|interval|never]
//	            [-auth tokens.json] [-quota 50 -quota-burst 10]
//
// -auth enables multi-tenant mode: requests must carry a bearer token
// from the JSON token file and each tenant sees only its own namespace.
// -quota adds per-tenant token-bucket admission on the mutation routes
// (429 + Retry-After on pushback).
//
// When -state is given, the store is loaded from the file at startup (if it
// exists) and persisted on every mutation-free interval and at shutdown.
//
// -data-dir enables crash-safe write-ahead logging instead: every mutation
// is persisted before it is applied, restarts replay the log (tolerating a
// torn tail), and POST /admin/compact (`ospreyctl compact`) snapshots the
// store and truncates the log. -state and -data-dir are mutually exclusive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"osprey/internal/aero"
	"osprey/internal/globus"
	"osprey/internal/wal"
)

// loadAuth reads the static token file and builds the validator: each
// entry maps a bearer token to its tenant namespace, scoped to the AERO
// API. The format is deliberately minimal — operators needing real
// credential flows front the server with their identity provider.
func loadAuth(path string) (*globus.Auth, int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var entries []struct {
		Token  string `json:"token"`
		Tenant string `json:"tenant"`
	}
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	auth := globus.NewAuth()
	for i, e := range entries {
		if e.Token == "" || e.Tenant == "" {
			return nil, 0, fmt.Errorf("%s: entry %d needs both token and tenant", path, i)
		}
		if err := auth.RegisterToken(&globus.Token{
			ID:       e.Token,
			Identity: e.Tenant,
			Scopes:   map[globus.Scope]bool{globus.ScopeAero: true},
		}); err != nil {
			return nil, 0, fmt.Errorf("%s: entry %d: %w", path, i, err)
		}
	}
	return auth, len(entries), nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("aero-server: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7523", "listen address")
		state      = flag.String("state", "", "optional JSON state file for persistence")
		dataDir    = flag.String("data-dir", "", "enable WAL persistence under this directory")
		fsyncMode  = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		authFile   = flag.String("auth", "", `enable multi-tenant bearer auth: JSON token file like [{"token":"t-1","tenant":"alice"}]`)
		quotaRate  = flag.Float64("quota", 0, "per-tenant mutation quota in req/s (0 = unlimited; needs -auth)")
		quotaBurst = flag.Float64("quota-burst", 10, "per-tenant quota token-bucket burst")
	)
	flag.Parse()
	if *state != "" && *dataDir != "" {
		log.Fatal("-state and -data-dir are mutually exclusive")
	}

	var store *aero.Store
	var walLog *wal.Log
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		walLog, err = wal.Open(*dataDir, wal.Options{Name: "wal.aero", Policy: policy, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		store, err = aero.OpenStore(walLog)
		if err != nil {
			log.Fatalf("recover store: %v", err)
		}
		data, _ := store.ListData()
		log.Printf("recovered %d data records from %s in %s", len(data), *dataDir, time.Since(start).Round(time.Millisecond))
	} else {
		store = aero.NewStore()
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := store.Load(f); err != nil {
				log.Fatalf("loading state: %v", err)
			}
			f.Close()
			log.Printf("loaded state from %s", *state)
		}
	}

	save := func() {
		if *state == "" {
			return
		}
		tmp := *state + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("save: %v", err)
			return
		}
		if err := store.Save(f); err != nil {
			log.Printf("save: %v", err)
			f.Close()
			return
		}
		f.Close()
		if err := os.Rename(tmp, *state); err != nil {
			log.Printf("save: %v", err)
		}
	}

	handler := aero.NewServer(store)
	if walLog != nil {
		handler.SetCompact(store.Compact)
	}
	if *authFile != "" {
		auth, tenants, err := loadAuth(*authFile)
		if err != nil {
			log.Fatalf("auth: %v", err)
		}
		handler.SetAuth(auth)
		log.Printf("bearer auth enabled: %d tokens", tenants)
		if *quotaRate > 0 {
			q := aero.NewQuotas()
			lim := aero.QuotaLimit{Rate: *quotaRate, Burst: *quotaBurst}
			q.SetLimit(aero.QuotaIngest, lim)
			q.SetLimit(aero.QuotaAnalysis, lim)
			handler.SetQuotas(q)
			log.Printf("per-tenant quotas enabled: %.1f req/s, burst %.0f", *quotaRate, *quotaBurst)
		}
	} else if *quotaRate > 0 {
		log.Fatal("-quota requires -auth (quotas are per tenant)")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("metadata service listening on http://%s", *addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	if *state != "" {
		go func() {
			for range time.Tick(30 * time.Second) {
				save()
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
	save()
	if walLog != nil {
		if err := store.Compact(); err != nil {
			log.Printf("compact: %v", err)
		}
		_ = walLog.Close()
	}
	_ = srv.Close()
}
