package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"osprey/internal/plot"
	"osprey/internal/sde"
)

// artifactsCmd implements the SDE registry subcommands, operating on a
// local JSON bundle file (the same format Export/Import exchange between
// collaborating groups):
//
//	ospreyctl artifacts -file sde.json list
//	ospreyctl artifacts -file sde.json search -kind model -tag epi -text music
//	ospreyctl artifacts -file sde.json register -name metarvm -version 1.2 -kind model \
//	    -desc "..." -tags epi,compartmental -langs R -modules deSolve
//	ospreyctl artifacts -file sde.json add-env -name improv -langs R,python -scheduler pbs -nodes 16
//	ospreyctl artifacts -file sde.json check <artifact-id> <env-name>
func artifactsCmd(args []string) error {
	fs := flag.NewFlagSet("artifacts", flag.ExitOnError)
	file := fs.String("file", "sde.json", "registry bundle file")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: ospreyctl artifacts [-file F] list|search|register|add-env|check ...")
	}

	reg := sde.NewRegistry()
	if f, err := os.Open(*file); err == nil {
		if _, err := reg.Import(f); err != nil {
			f.Close()
			return fmt.Errorf("loading %s: %w", *file, err)
		}
		f.Close()
	}
	save := func() error {
		f, err := os.Create(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		return reg.Export(f, sde.Query{})
	}

	switch rest[0] {
	case "list":
		return printArtifacts(reg.Search(sde.Query{}))
	case "search":
		sf := flag.NewFlagSet("search", flag.ExitOnError)
		kind := sf.String("kind", "", "model | me-algorithm | harness")
		tag := sf.String("tag", "", "tag filter")
		text := sf.String("text", "", "substring of name/description")
		sf.Parse(rest[1:])
		return printArtifacts(reg.Search(sde.Query{
			Kind: sde.ArtifactKind(*kind), Tag: *tag, Text: *text,
		}))
	case "register":
		rf := flag.NewFlagSet("register", flag.ExitOnError)
		name := rf.String("name", "", "artifact name (required)")
		version := rf.String("version", "", "version (required)")
		kind := rf.String("kind", "model", "model | me-algorithm | harness")
		desc := rf.String("desc", "", "description")
		tags := rf.String("tags", "", "comma-separated tags")
		langs := rf.String("langs", "", "comma-separated required languages")
		modules := rf.String("modules", "", "comma-separated required modules")
		scheduler := rf.String("scheduler", "", "required scheduler")
		minNodes := rf.Int("min-nodes", 0, "minimum nodes")
		rf.Parse(rest[1:])
		art, err := reg.Register(sde.Artifact{
			Name: *name, Version: *version, Kind: sde.ArtifactKind(*kind),
			Description: *desc,
			Tags:        splitList(*tags),
			Requires: sde.Requirements{
				Languages: splitList(*langs),
				Modules:   splitList(*modules),
				Scheduler: *scheduler,
				MinNodes:  *minNodes,
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("registered %s (%s@%s)\n", art.ID, art.Name, art.Version)
		return save()
	case "add-env":
		ef := flag.NewFlagSet("add-env", flag.ExitOnError)
		name := ef.String("name", "", "environment name (required)")
		langs := ef.String("langs", "", "comma-separated languages")
		scheduler := ef.String("scheduler", "", "batch scheduler")
		nodes := ef.Int("nodes", 1, "node count")
		modules := ef.String("modules", "", "comma-separated modules")
		ef.Parse(rest[1:])
		if err := reg.AddEnvironment(sde.Environment{
			Name: *name, Languages: splitList(*langs),
			Scheduler: *scheduler, Nodes: *nodes, Modules: splitList(*modules),
		}); err != nil {
			return err
		}
		fmt.Printf("environment %s recorded\n", *name)
		return save()
	case "check":
		if len(rest) != 3 {
			return fmt.Errorf("usage: ospreyctl artifacts check <artifact-id> <env-name>")
		}
		rep, err := reg.CheckPortability(rest[1], rest[2])
		if err != nil {
			return err
		}
		if rep.Portable {
			fmt.Printf("%s is portable to %s\n", rep.Artifact, rep.Environment)
			return nil
		}
		fmt.Printf("%s is NOT portable to %s; missing:\n", rep.Artifact, rep.Environment)
		for _, m := range rep.Missing {
			fmt.Printf("  - %s\n", m)
		}
		return nil
	default:
		return fmt.Errorf("unknown artifacts subcommand %q", rest[0])
	}
}

func printArtifacts(arts []*sde.Artifact) error {
	var rows [][]string
	for _, a := range arts {
		rows = append(rows, []string{
			a.ID, a.Name, a.Version, string(a.Kind),
			strings.Join(a.Tags, ","), a.Description,
		})
	}
	return plot.Table(os.Stdout, []string{"ID", "Name", "Version", "Kind", "Tags", "Description"}, rows)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
