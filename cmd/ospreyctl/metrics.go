package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"osprey/internal/obs"
	"osprey/internal/plot"
)

// metricsCmd fetches /metrics from an aero server or osprey-daemon and
// pretty-prints the snapshot: counters and gauges as name/value tables,
// histograms with count, total, and approximate quantiles.
func metricsCmd(server string) error {
	var snap obs.Snapshot
	if err := getJSON(server+"/metrics", &snap); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot at %s\n", snap.Time.Format(time.RFC3339))

	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		var rows [][]string
		for _, name := range snap.SortedCounterNames() {
			rows = append(rows, []string{name, fmt.Sprintf("%d", snap.Counters[name])})
		}
		if err := plot.Table(os.Stdout, []string{"Name", "Count"}, rows); err != nil {
			return err
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("\ngauges:")
		var rows [][]string
		for _, name := range snap.SortedGaugeNames() {
			rows = append(rows, []string{name, fmt.Sprintf("%d", snap.Gauges[name])})
		}
		if err := plot.Table(os.Stdout, []string{"Name", "Value"}, rows); err != nil {
			return err
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("\nhistograms:")
		var rows [][]string
		for _, name := range snap.SortedHistogramNames() {
			h := snap.Histograms[name]
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", h.Count),
				fmtSeconds(h.SumSeconds),
				fmtSeconds(h.P50Seconds), fmtSeconds(h.P90Seconds), fmtSeconds(h.P99Seconds),
				fmtSeconds(h.MaxSeconds),
			})
		}
		if err := plot.Table(os.Stdout, []string{"Name", "Count", "Sum", "p50", "p90", "p99", "Max"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// traceCmd fetches /trace and prints the retained spans, oldest first,
// indenting children under their parents where both are retained.
func traceCmd(server string) error {
	var snap obs.TraceSnapshot
	if err := getJSON(server+"/trace", &snap); err != nil {
		return err
	}
	fmt.Printf("trace at %s: %d spans retained (%d recorded since start)\n\n",
		snap.Time.Format(time.RFC3339), len(snap.Spans), snap.Total)
	depth := map[uint64]int{}
	// Spans finish children-first, so compute depths against the full set
	// before printing in start order.
	byID := map[uint64]obs.SpanRecord{}
	for _, s := range snap.Spans {
		byID[s.ID] = s
	}
	var depthOf func(id uint64) int
	depthOf = func(id uint64) int {
		if d, ok := depth[id]; ok {
			return d
		}
		s, ok := byID[id]
		if !ok || s.Parent == 0 {
			depth[id] = 0
			return 0
		}
		d := depthOf(s.Parent) + 1
		depth[id] = d
		return d
	}
	ordered := append([]obs.SpanRecord(nil), snap.Spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })
	for _, s := range ordered {
		indent := ""
		for i := 0; i < depthOf(s.ID); i++ {
			indent += "  "
		}
		line := fmt.Sprintf("%s %s%s (%.2fms)", s.Start.Format("15:04:05.000"), indent, s.Name, s.DurationMS)
		if s.Detail != "" {
			line += " — " + s.Detail
		}
		if s.Err != "" {
			line += " !err: " + s.Err
		}
		fmt.Println(line)
	}
	return nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
