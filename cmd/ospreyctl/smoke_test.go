package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"osprey/internal/obs"
)

// TestOspreyctlSmoke is the end-to-end CLI acceptance check: build the
// real daemon and the real ospreyctl binary, boot the daemon on a temp
// -data-dir, and drive every read-side subcommand against it over HTTP,
// asserting exit codes and output shapes. This is what `make smoke-ctl`
// (and the CI leg of the same name) runs.
func TestOspreyctlSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process smoke test in -short mode")
	}
	binDir := t.TempDir()
	daemon := filepath.Join(binDir, "osprey-daemon")
	ctl := filepath.Join(binDir, "ospreyctl")
	for target, dir := range map[string]string{daemon: "../osprey-daemon", ctl: "."} {
		build := exec.Command("go", "build", "-o", target, dir)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("build %s: %v", dir, err)
		}
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	root := "http://" + addr
	meta := root + "/metadata"

	proc := exec.Command(daemon, "-addr", addr, "-tick", "200ms", "-fast", "-data-dir", dataDir, "-shards", "2")
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()
	waitHealthy(t, meta, 30*time.Second)

	// run executes ospreyctl with -server pointing at server and returns
	// combined output; wantExit is asserted.
	run := func(server string, wantExit int, args ...string) string {
		t.Helper()
		cmd := exec.Command(ctl, append([]string{"-server", server}, args...)...)
		out, err := cmd.CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("ospreyctl %v: %v", args, err)
		}
		if exit != wantExit {
			t.Fatalf("ospreyctl %v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		return string(out)
	}

	// Liveness and admin against the metadata mount.
	if out := run(meta, 0, "health"); !strings.Contains(out, "ok") {
		t.Fatalf("health output: %q", out)
	}
	if out := run(meta, 0, "compact"); !strings.Contains(out, "compacted") {
		t.Fatalf("compact output: %q", out)
	}

	// Listing commands: the -fast daemon registers flows and ingests data
	// within the first ticks; wait until both lists are non-empty through
	// the CLI itself.
	waitFor(t, 60*time.Second, func() bool {
		return strings.Contains(run(meta, 0, "flows"), "flow-") &&
			strings.Contains(run(meta, 0, "data"), "data-")
	})

	// versions/provenance on a real UUID from the data listing.
	dataOut := run(meta, 0, "data")
	uuid := ""
	for _, f := range strings.Fields(dataOut) {
		if strings.HasPrefix(f, "data-") {
			uuid = f
			break
		}
	}
	if uuid == "" {
		t.Fatalf("no data UUID in listing:\n%s", dataOut)
	}
	run(meta, 0, "versions", uuid)
	run(meta, 0, "provenance", uuid)

	// The shard-group status command reads /shards at the server root (the
	// daemon above was started with -shards 2).
	shardsOut := run(root, 0, "shards")
	if !strings.Contains(shardsOut, "2 shards") || !strings.Contains(shardsOut, "127.0.0.1:") {
		t.Fatalf("shards output: %q", shardsOut)
	}

	// Observability commands read /metrics and /trace at the server root.
	metricsOut := run(root, 0, "metrics")
	for _, section := range []string{"counters:", "gauges:", "histograms:"} {
		if !strings.Contains(metricsOut, section) {
			t.Fatalf("metrics output missing %q:\n%s", section, metricsOut)
		}
	}
	run(root, 0, "trace")

	// The raw metrics endpoint must parse as an obs.Snapshot (the scrape
	// contract external agents rely on).
	resp, err := http.Get(root + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("GET /metrics does not parse as obs.Snapshot: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("metrics snapshot has no counters")
	}

	// Failure modes: an unknown subcommand is a usage error (exit 2), an
	// unreachable server a runtime error (log.Fatal -> exit 1).
	run(meta, 2, "no-such-command")
	run("http://127.0.0.1:1/metadata", 1, "health")
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	waitFor(t, timeout, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("condition not met within %v", timeout))
}
