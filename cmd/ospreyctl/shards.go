package main

import (
	"fmt"
	"os"

	"osprey/internal/emews"
	"osprey/internal/plot"
)

// shardsCmd fetches /shards from an osprey-daemon serving a sharded task
// substrate and prints per-shard listen addresses and occupancy. A daemon
// started without -shards answers 404, which surfaces here as an error.
func shardsCmd(server string) error {
	var st struct {
		Shards  int `json:"shards"`
		Members []struct {
			Shard int         `json:"shard"`
			Addr  string      `json:"addr"`
			Dir   string      `json:"dir"`
			Stats emews.Stats `json:"stats"`
		} `json:"members"`
		Totals emews.Stats `json:"totals"`
	}
	if err := getJSON(server+"/shards", &st); err != nil {
		return err
	}
	fmt.Printf("task substrate: %d shards\n", st.Shards)
	var rows [][]string
	for _, m := range st.Members {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Shard), m.Addr,
			fmt.Sprintf("%d", m.Stats.Queued), fmt.Sprintf("%d", m.Stats.Running),
			fmt.Sprintf("%d", m.Stats.Complete), fmt.Sprintf("%d", m.Stats.Failed),
			fmt.Sprintf("%d", m.Stats.Submitted),
		})
	}
	rows = append(rows, []string{"all", "-",
		fmt.Sprintf("%d", st.Totals.Queued), fmt.Sprintf("%d", st.Totals.Running),
		fmt.Sprintf("%d", st.Totals.Complete), fmt.Sprintf("%d", st.Totals.Failed),
		fmt.Sprintf("%d", st.Totals.Submitted),
	})
	return plot.Table(os.Stdout, []string{"Shard", "Addr", "Queued", "Running", "Complete", "Failed", "Submitted"}, rows)
}
