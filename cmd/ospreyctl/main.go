// Command ospreyctl inspects an AERO metadata server: lists registered
// flows and data identities, shows version histories, and walks provenance
// — the operator's window into what the automated workflows have done.
//
// Usage:
//
//	ospreyctl [-server http://127.0.0.1:7523] <command> [args]
//
// Commands:
//
//	flows                 list registered flows
//	data                  list data identities
//	versions <uuid>       show a data item's version history
//	provenance <uuid>     show derivation edges touching a data item
//	shards                show the daemon's task-substrate shard group
//	metrics               pretty-print the server's /metrics snapshot
//	trace                 print the server's recent span timeline
//	health                check server liveness
//	compact               force a WAL snapshot + log truncation on the server
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"osprey/internal/aero"
	"osprey/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospreyctl: ")
	server := flag.String("server", "http://127.0.0.1:7523", "AERO metadata server URL")
	token := flag.String("token", os.Getenv("OSPREY_TOKEN"), "bearer token for a multi-tenant server (default $OSPREY_TOKEN)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	client := aero.NewClient(*server)
	client.Token = *token

	var err error
	switch args[0] {
	case "artifacts":
		err = artifactsCmd(args[1:])
	case "flows":
		err = listFlows(client)
	case "data":
		err = listData(client)
	case "versions":
		if len(args) != 2 {
			usage()
		}
		err = showVersions(client, args[1])
	case "provenance":
		if len(args) != 2 {
			usage()
		}
		err = showProvenance(client, args[1])
	case "topology":
		var dot string
		dot, err = aero.ExportDOT(client, "AERO workflow topology")
		if err == nil {
			fmt.Print(dot)
		}
	case "shards":
		err = shardsCmd(*server)
	case "metrics":
		err = metricsCmd(*server)
	case "trace":
		err = traceCmd(*server)
	case "health":
		err = health(*server)
	case "compact":
		err = compact(*server, *token)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ospreyctl [-server URL] flows|data|versions <uuid>|provenance <uuid>|topology|shards|metrics|trace|health|compact")
	fmt.Fprintln(os.Stderr, "       ospreyctl artifacts [-file F] list|search|register|add-env|check ...")
	os.Exit(2)
}

func listFlows(c *aero.Client) error {
	flows, err := c.ListFlows()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, f := range flows {
		last := "-"
		if !f.LastRun.IsZero() {
			last = f.LastRun.Format(time.RFC3339)
		}
		rows = append(rows, []string{f.ID, f.Name, f.Kind.String(),
			fmt.Sprintf("%d", len(f.InputUUIDs)), fmt.Sprintf("%d", len(f.OutputUUIDs)),
			fmt.Sprintf("%d", f.Runs), last})
	}
	return plot.Table(os.Stdout, []string{"ID", "Name", "Kind", "In", "Out", "Runs", "Last run"}, rows)
}

func listData(c *aero.Client) error {
	recs, err := c.ListData()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, d := range recs {
		latest := "-"
		if v := d.Latest(); v != nil {
			latest = fmt.Sprintf("v%d @ %s/%s", v.Num, v.Endpoint, v.Path)
		}
		rows = append(rows, []string{d.UUID, d.Name, fmt.Sprintf("%d", len(d.Versions)), latest})
	}
	return plot.Table(os.Stdout, []string{"UUID", "Name", "Versions", "Latest"}, rows)
}

func showVersions(c *aero.Client, uuid string) error {
	rec, err := c.GetData(uuid)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s)\n", rec.UUID, rec.Name)
	if rec.SourceURL != "" {
		fmt.Printf("source: %s\n", rec.SourceURL)
	}
	var rows [][]string
	for _, v := range rec.Versions {
		rows = append(rows, []string{
			fmt.Sprintf("v%d", v.Num), v.Timestamp.Format(time.RFC3339),
			fmt.Sprintf("%d", v.Size), v.Checksum[:min(16, len(v.Checksum))],
			fmt.Sprintf("%s/%s:%s", v.Endpoint, v.Collection, v.Path),
		})
	}
	return plot.Table(os.Stdout, []string{"Version", "Timestamp", "Size", "Checksum", "Location"}, rows)
}

func showProvenance(c *aero.Client, uuid string) error {
	edges, err := c.Provenance(uuid)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, e := range edges {
		rows = append(rows, []string{
			e.FlowID,
			fmt.Sprintf("%s v%d", e.InputUUID, e.InputVersion),
			fmt.Sprintf("%s v%d", e.OutputUUID, e.OutputVersion),
			e.Timestamp.Format(time.RFC3339),
		})
	}
	return plot.Table(os.Stdout, []string{"Flow", "Input", "Output", "When"}, rows)
}

func health(server string) error {
	resp, err := http.Get(server + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %d", resp.StatusCode)
	}
	fmt.Println("ok")
	return nil
}

// compact asks the server to snapshot its state and truncate its WAL —
// the manual handle on replay debt (the daemon also compacts on size and
// at clean shutdown).
func compact(server, token string) error {
	req, err := http.NewRequest(http.MethodPost, server+"/admin/compact", nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		fmt.Println("compacted")
		return nil
	case http.StatusNotImplemented:
		return fmt.Errorf("server has no WAL persistence enabled (start it with -data-dir)")
	case http.StatusUnauthorized, http.StatusForbidden:
		return fmt.Errorf("server requires a valid bearer token (pass -token or set $OSPREY_TOKEN)")
	default:
		return fmt.Errorf("server returned %d", resp.StatusCode)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
