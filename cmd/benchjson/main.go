// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, so before/after benchmark runs can be committed and
// diffed (BENCH_baseline.json vs BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -out BENCH_$(date +%F).json
//	go run ./cmd/benchjson -compare BENCH_baseline.json BENCH_new.json -tolerance 0.15 -diff-out bench-diff.json
//
// Lines that are not benchmark results (PASS, ok, log output) are ignored.
// In -compare mode the two snapshots are diffed per benchmark (GOMAXPROCS
// name suffixes stripped) and the exit code is 1 when any benchmark's
// ns/op regressed by more than the tolerance — the nightly
// bench-regression CI job runs exactly this.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Memory fields are zero when -benchmem was
// not in effect for that benchmark.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full converted run.
type Snapshot struct {
	// Env records interpreter-level context lines (goos/goarch/pkg/cpu).
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

// parse consumes go-test benchmark output and keeps benchmark and context
// lines, silently skipping everything else.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				snap.Env[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		res := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		snap.Results = append(snap.Results, res)
	}
	return snap, sc.Err()
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	doCompare := flag.Bool("compare", false, "compare two snapshot files: -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.15, "allowed ns/op growth in -compare mode (0.15 = 15%)")
	diffOut := flag.String("diff-out", "", "write the -compare diff JSON here (default stdout)")
	flag.Parse()

	if *doCompare {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs two snapshot files: old.json new.json")
			os.Exit(2)
		}
		// Flags given after the positional file arguments (e.g.
		// `-compare old new -tolerance 0.2`) are parsed in a second pass.
		if len(args) > 2 {
			flag.CommandLine.Parse(args[2:])
		}
		os.Exit(runCompare(args[0], args[1], *tolerance, *diffOut))
	}

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}
