// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, so before/after benchmark runs can be committed and
// diffed (BENCH_baseline.json vs BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -out BENCH_$(date +%F).json
//
// Lines that are not benchmark results (PASS, ok, log output) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Memory fields are zero when -benchmem was
// not in effect for that benchmark.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full converted run.
type Snapshot struct {
	// Env records interpreter-level context lines (goos/goarch/pkg/cpu).
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

// parse consumes go-test benchmark output and keeps benchmark and context
// lines, silently skipping everything else.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				snap.Env[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		res := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		snap.Results = append(snap.Results, res)
	}
	return snap, sc.Err()
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}
