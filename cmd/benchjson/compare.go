package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Comparison is the diff of two benchmark snapshots, the artifact the
// nightly bench-regression job uploads.
type Comparison struct {
	Tolerance  float64     `json:"tolerance"`
	Regressed  []BenchDiff `json:"regressed,omitempty"`
	Improved   []BenchDiff `json:"improved,omitempty"`
	Unchanged  []BenchDiff `json:"unchanged,omitempty"`
	OnlyInOld  []string    `json:"only_in_old,omitempty"`
	OnlyInNew  []string    `json:"only_in_new,omitempty"`
	Pass       bool        `json:"pass"`
	MaxRatio   float64     `json:"max_ratio"`    // worst new/old ns-per-op ratio
	MaxRatioOf string      `json:"max_ratio_of"` // the benchmark it came from
}

// BenchDiff is one benchmark's old-vs-new timing.
type BenchDiff struct {
	Name     string  `json:"name"`
	OldNsOp  float64 `json:"old_ns_per_op"`
	NewNsOp  float64 `json:"new_ns_per_op"`
	Ratio    float64 `json:"ratio"` // new/old; >1 is slower
	DeltaPct float64 `json:"delta_pct"`
}

// baseName strips the GOMAXPROCS suffix go test appends to parallel
// benchmarks (BenchmarkFoo-8 -> BenchmarkFoo) so snapshots taken on
// machines with different core counts still line up.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		digits := name[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

func loadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compare builds the diff of two snapshots. A benchmark regresses when
// its ns/op grew by more than tolerance (0.15 = 15%). Benchmarks present
// in only one snapshot are reported but do not fail the comparison —
// suites grow and shrink legitimately.
func compare(old, new *Snapshot, tolerance float64) *Comparison {
	c := &Comparison{Tolerance: tolerance, Pass: true}
	oldBy := map[string]Result{}
	for _, r := range old.Results {
		oldBy[baseName(r.Name)] = r
	}
	newBy := map[string]Result{}
	for _, r := range new.Results {
		newBy[baseName(r.Name)] = r
	}
	var names []string
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldBy[name]
		n, ok := newBy[name]
		if !ok {
			c.OnlyInOld = append(c.OnlyInOld, name)
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		d := BenchDiff{
			Name: name, OldNsOp: o.NsPerOp, NewNsOp: n.NsPerOp,
			Ratio: ratio, DeltaPct: (ratio - 1) * 100,
		}
		if ratio > c.MaxRatio {
			c.MaxRatio, c.MaxRatioOf = ratio, name
		}
		switch {
		case ratio > 1+tolerance:
			c.Regressed = append(c.Regressed, d)
			c.Pass = false
		case ratio < 1-tolerance:
			c.Improved = append(c.Improved, d)
		default:
			c.Unchanged = append(c.Unchanged, d)
		}
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			c.OnlyInNew = append(c.OnlyInNew, name)
		}
	}
	sort.Strings(c.OnlyInNew)
	return c
}

// runCompare implements `benchjson -compare old.json new.json`. Exit
// codes: 0 within tolerance, 1 regression, 2 usage/IO error.
func runCompare(oldPath, newPath string, tolerance float64, outPath string) int {
	old, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	new, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	c := compare(old, new, tolerance)
	buf, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	buf = append(buf, '\n')
	if outPath == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	for _, d := range c.Regressed {
		fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f -> %.1f ns/op (%+.1f%%, tolerance %.0f%%)\n",
			d.Name, d.OldNsOp, d.NewNsOp, d.DeltaPct, tolerance*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks: %d regressed, %d improved, %d within tolerance\n",
		len(c.Regressed)+len(c.Improved)+len(c.Unchanged), len(c.Regressed), len(c.Improved), len(c.Unchanged))
	if !c.Pass {
		return 1
	}
	return 0
}
