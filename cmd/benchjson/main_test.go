package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: osprey/internal/compute
cpu: Some CPU @ 2.00GHz
BenchmarkSurrogate-8   	    1000	   1200.5 ns/op	     128 B/op	       2 allocs/op
BenchmarkRt-8          	     500	   2500.0 ns/op
PASS
ok  	osprey/internal/compute	1.2s
`

func parseSample(t *testing.T, s string) *Snapshot {
	t.Helper()
	snap, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParseBenchOutput(t *testing.T) {
	snap := parseSample(t, sampleBench)
	if len(snap.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkSurrogate-8" || r.NsPerOp != 1200.5 || r.BytesPerOp != 128 || r.AllocsPerOp != 2 {
		t.Fatalf("result = %+v", r)
	}
	if snap.Env["goos"] != "linux" {
		t.Fatalf("env = %+v", snap.Env)
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":     "BenchmarkFoo",
		"BenchmarkFoo-16":    "BenchmarkFoo",
		"BenchmarkFoo":       "BenchmarkFoo",
		"BenchmarkFoo-bar":   "BenchmarkFoo-bar",
		"BenchmarkFoo/sub-4": "BenchmarkFoo/sub",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	old := &Snapshot{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
		{Name: "BenchmarkC-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 1000},
	}}
	// A regresses 30%, B improves 30%, C is within tolerance; the core
	// count changed between snapshots and must not matter.
	new := &Snapshot{Results: []Result{
		{Name: "BenchmarkA-16", NsPerOp: 1300},
		{Name: "BenchmarkB-16", NsPerOp: 700},
		{Name: "BenchmarkC-16", NsPerOp: 1100},
		{Name: "BenchmarkNew-16", NsPerOp: 1},
	}}
	c := compare(old, new, 0.15)
	if c.Pass {
		t.Fatal("30% regression passed a 15% tolerance")
	}
	if len(c.Regressed) != 1 || c.Regressed[0].Name != "BenchmarkA" {
		t.Fatalf("regressed = %+v", c.Regressed)
	}
	if len(c.Improved) != 1 || c.Improved[0].Name != "BenchmarkB" {
		t.Fatalf("improved = %+v", c.Improved)
	}
	if len(c.Unchanged) != 1 || c.Unchanged[0].Name != "BenchmarkC" {
		t.Fatalf("unchanged = %+v", c.Unchanged)
	}
	if len(c.OnlyInOld) != 1 || c.OnlyInOld[0] != "BenchmarkGone" ||
		len(c.OnlyInNew) != 1 || c.OnlyInNew[0] != "BenchmarkNew" {
		t.Fatalf("only-in sets: old=%v new=%v", c.OnlyInOld, c.OnlyInNew)
	}
	if c.MaxRatioOf != "BenchmarkA" || c.MaxRatio < 1.29 || c.MaxRatio > 1.31 {
		t.Fatalf("max ratio %v of %q", c.MaxRatio, c.MaxRatioOf)
	}

	// Within tolerance on both sides: pass.
	if c := compare(old, old, 0.15); !c.Pass || len(c.Regressed) != 0 {
		t.Fatalf("self-compare failed: %+v", c)
	}
}
