#!/bin/sh
# Guard for the Makefile <-> ci.yml mirror rule (DESIGN.md, "Load & chaos
# testing"): the Makefile's CI_STEPS variable is the single source of
# truth for the per-push pipeline, and the `test` job in
# .github/workflows/ci.yml must run exactly `make <step>` for each step,
# in the same order. This script fails when the two lists diverge, so a
# pipeline edit that touches only one of the files cannot land green.
set -eu
cd "$(dirname "$0")/.."

make_steps=$(sed -n 's/^CI_STEPS := //p' Makefile | tr ' ' '\n' | sed '/^$/d')
if [ -z "$make_steps" ]; then
    echo "check_ci_mirror: no CI_STEPS variable found in Makefile" >&2
    exit 1
fi

# Extract the `run: make <step>` lines of the ci.yml `test` job only
# (other jobs — coverage, soak — have their own make targets and are not
# part of the mirrored list).
yml_steps=$(awk '
    /^  [a-zA-Z_-]+:[ ]*$/ { in_test = ($1 == "test:") }
    in_test && $1 == "run:" && $2 == "make" { print $3 }
' .github/workflows/ci.yml)
if [ -z "$yml_steps" ]; then
    echo "check_ci_mirror: no 'run: make <step>' lines found in the ci.yml test job" >&2
    exit 1
fi

if [ "$make_steps" != "$yml_steps" ]; then
    echo "check_ci_mirror: Makefile CI_STEPS and the ci.yml test job diverged" >&2
    echo "--- Makefile CI_STEPS:" >&2
    echo "$make_steps" >&2
    echo "--- ci.yml test job 'run: make' steps:" >&2
    echo "$yml_steps" >&2
    echo "Edit both files together; see DESIGN.md for the mirror rule." >&2
    exit 1
fi

echo "ci mirror ok: $(echo "$make_steps" | wc -l | tr -d ' ') steps match"
