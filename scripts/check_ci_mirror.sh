#!/bin/sh
# Guard for the Makefile <-> ci.yml mirror rule (DESIGN.md, "Load & chaos
# testing"): the Makefile's CI_STEPS variable is the single source of
# truth for the per-push pipeline, and the `test` job in
# .github/workflows/ci.yml must run exactly `make <step>` for each step,
# in the same order. This script fails when the two lists diverge, so a
# pipeline edit that touches only one of the files cannot land green.
set -eu
cd "$(dirname "$0")/.."

make_steps=$(sed -n 's/^CI_STEPS := //p' Makefile | tr ' ' '\n' | sed '/^$/d')
if [ -z "$make_steps" ]; then
    echo "check_ci_mirror: no CI_STEPS variable found in Makefile" >&2
    exit 1
fi

# Extract the `run: make <step>` lines of the ci.yml `test` job only
# (other jobs — coverage, soak — have their own make targets and are not
# part of the mirrored list).
yml_steps=$(awk '
    /^  [a-zA-Z_-]+:[ ]*$/ { in_test = ($1 == "test:") }
    in_test && $1 == "run:" && $2 == "make" { print $3 }
' .github/workflows/ci.yml)
if [ -z "$yml_steps" ]; then
    echo "check_ci_mirror: no 'run: make <step>' lines found in the ci.yml test job" >&2
    exit 1
fi

if [ "$make_steps" != "$yml_steps" ]; then
    echo "check_ci_mirror: Makefile CI_STEPS and the ci.yml test job diverged" >&2
    echo "--- Makefile CI_STEPS:" >&2
    echo "$make_steps" >&2
    echo "--- ci.yml test job 'run: make' steps:" >&2
    echo "$yml_steps" >&2
    echo "Edit both files together; see DESIGN.md for the mirror rule." >&2
    exit 1
fi

# The dedicated jobs (coverage, soak, soak-shard, staticcheck, ...) are
# mirrored through the CI_JOBS variable: job:target pairs, where the named
# ci.yml job must contain a `run: make <target>` line. A dedicated job
# added to only one of the files fails here, same as a test-job step.
ci_jobs=$(sed -n 's/^CI_JOBS := //p' Makefile | tr ' ' '\n' | sed '/^$/d')
if [ -z "$ci_jobs" ]; then
    echo "check_ci_mirror: no CI_JOBS variable found in Makefile" >&2
    exit 1
fi
for pair in $ci_jobs; do
    job=${pair%%:*}
    target=${pair#*:}
    job_targets=$(awk -v job="$job" '
        /^  [a-zA-Z_-]+:[ ]*$/ { in_job = ($1 == job ":") }
        in_job && $1 == "run:" && $2 == "make" { print $3 }
    ' .github/workflows/ci.yml)
    found=no
    for t in $job_targets; do
        [ "$t" = "$target" ] && found=yes
    done
    if [ "$found" != "yes" ]; then
        echo "check_ci_mirror: CI_JOBS entry '$pair': ci.yml job '$job' does not run 'make $target'" >&2
        echo "Edit both files together; see DESIGN.md for the mirror rule." >&2
        exit 1
    fi
done

# Reverse direction: every dedicated job actually present in ci.yml must
# be declared in CI_JOBS. Without this, someone can add a ci.yml job with
# no Makefile counterpart — it runs in CI but `make ci` users never see
# it, which is exactly the drift the mirror rule exists to prevent.
yml_jobs=$(awk '
    /^jobs:/ { in_jobs = 1; next }
    /^[a-zA-Z_-]+:/ { in_jobs = 0 }
    in_jobs && /^  [a-zA-Z_-]+:[ ]*$/ { sub(/:$/, "", $1); print $1 }
' .github/workflows/ci.yml)
for job in $yml_jobs; do
    [ "$job" = "test" ] && continue
    found=no
    for pair in $ci_jobs; do
        [ "${pair%%:*}" = "$job" ] && found=yes
    done
    if [ "$found" != "yes" ]; then
        echo "check_ci_mirror: ci.yml job '$job' has no CI_JOBS entry in the Makefile" >&2
        echo "Add '$job:<make-target>' to CI_JOBS (and the target) or remove the job." >&2
        exit 1
    fi
done

echo "ci mirror ok: $(echo "$make_steps" | wc -l | tr -d ' ') steps + $(echo "$ci_jobs" | wc -l | tr -d ' ') dedicated jobs match"
