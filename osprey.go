// Package osprey is the public API of the OSPREY reproduction: the Open
// Science Platform for Robust Epidemic Analysis, rebuilt in pure Go from
// the ICPP 2025 paper "Automation and Collaboration in Complex
// Epidemiological Workflows with OSPREY".
//
// The platform wires together four substrates:
//
//   - A simulated research fabric (Globus-style auth, storage endpoints
//     with collections and ACLs, compute endpoints, timers, flows).
//   - A batch scheduler simulating the HPC clusters the paper runs on.
//   - AERO, the event-driven data automation platform (§2): ingestion
//     flows that poll sources and version data by checksum, and analysis
//     flows triggered by data updates.
//   - EMEWS, the model-exploration substrate (§3): a task database with
//     Futures and worker pools started through the scheduler.
//
// On top of these it implements the paper's two use cases:
//
//   - NewWastewaterPipeline assembles the automated multi-source
//     wastewater R(t) estimation workflow (Figures 1-2): four plant feeds
//     are polled, validated, analyzed with the Goldstein semi-parametric
//     Bayesian estimator on the batch tier, and aggregated into a
//     population-weighted ensemble when all four estimates are fresh.
//   - RunGSA executes the replicated MUSIC active-learning global
//     sensitivity analysis of the MetaRVM metapopulation model
//     (Figures 4-5, Table 1), with instances interleaved over one EMEWS
//     worker pool; RunPCEComparison produces the one-shot PCE baseline.
//
// Quickstart:
//
//	p, err := osprey.New(osprey.Config{Identity: "alice"})
//	if err != nil { ... }
//	defer p.Shutdown()
//	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{})
//	if err != nil { ... }
//	defer wp.Close()
//	updates, err := wp.PollAll() // one simulated daily cycle
//
// See the examples/ directory for complete programs and DESIGN.md for the
// substrate inventory and paper-experiment index.
package osprey

import (
	"osprey/internal/abm"
	"osprey/internal/core"
	"osprey/internal/design"
	"osprey/internal/metarvm"
	"osprey/internal/music"
	"osprey/internal/rt"
	"osprey/internal/wastewater"
)

// Config describes an OSPREY deployment (identity, cluster size, storage
// collection, optional remote metadata service).
type Config = core.Config

// Platform is a fully wired OSPREY deployment.
type Platform = core.Platform

// New assembles a platform.
func New(cfg Config) (*Platform, error) { return core.New(cfg) }

// WastewaterConfig parameterizes the use case 1 pipeline.
type WastewaterConfig = core.WastewaterConfig

// WastewaterPipeline is the automated multi-source R(t) workflow of
// Figure 1.
type WastewaterPipeline = core.WastewaterPipeline

// NewWastewaterPipeline builds and registers the full Figure 1 workflow.
func NewWastewaterPipeline(p *Platform, cfg WastewaterConfig) (*WastewaterPipeline, error) {
	return core.NewWastewaterPipeline(p, cfg)
}

// GSAConfig parameterizes the use case 2 study.
type GSAConfig = core.GSAConfig

// GSAResult is the outcome of a replicated GSA study.
type GSAResult = core.GSAResult

// RunGSA executes the replicated MUSIC study, interleaved (the paper's
// design) or sequential (the utilization ablation).
func RunGSA(p *Platform, cfg GSAConfig, interleaved bool) (*GSAResult, error) {
	return core.RunGSA(p, cfg, interleaved)
}

// PCEComparison holds the one-shot PCE baseline curves of Figure 4.
type PCEComparison = core.PCEComparison

// RunPCEComparison fits PCE surrogates on nested LHS designs of increasing
// size against a fixed-seed MetaRVM response.
func RunPCEComparison(space *design.Space, seed, modelSeed uint64, sizes []int, degree int) (*PCEComparison, error) {
	return core.RunPCEComparison(space, seed, modelSeed, sizes, degree)
}

// GoldsteinOptions configures the wastewater R(t) estimator.
type GoldsteinOptions = rt.GoldsteinOptions

// RtEstimate is a per-plant posterior R(t) summary.
type RtEstimate = rt.Estimate

// EnsembleEstimate is the population-weighted aggregate R(t).
type EnsembleEstimate = rt.EnsembleEstimate

// MusicOptions configures a MUSIC instance.
type MusicOptions = music.Options

// MusicSnapshot is one point of an index-convergence curve.
type MusicSnapshot = music.Snapshot

// Plant describes a water reclamation plant feed.
type Plant = wastewater.Plant

// ChicagoPlants returns the paper's four plants.
func ChicagoPlants() []Plant { return wastewater.ChicagoPlants() }

// MetaRVMConfig specifies a MetaRVM simulation run.
type MetaRVMConfig = metarvm.Config

// MetaRVMParams holds the MetaRVM rate and proportion parameters.
type MetaRVMParams = metarvm.Params

// RunMetaRVM simulates the MetaRVM model.
func RunMetaRVM(cfg MetaRVMConfig) (*metarvm.Result, error) { return metarvm.Run(cfg) }

// DefaultMetaRVMConfig returns the four-group, 90-day GSA configuration.
func DefaultMetaRVMConfig() MetaRVMConfig { return metarvm.DefaultConfig() }

// GSAParameterSpace returns Table 1: the five uncertain MetaRVM parameters
// and their ranges.
func GSAParameterSpace() *design.Space { return metarvm.GSAParameterSpace() }

// ABMConfig specifies an agent-based simulation run.
type ABMConfig = abm.Config

// RunABM simulates the agent-based epidemic model — the expensive
// counterpart of MetaRVM, sharing its disease states and Table 1
// parameterization.
func RunABM(cfg ABMConfig) (*abm.Result, error) { return abm.Run(cfg) }

// ForecastRt is re-exported for projecting an estimate beyond its window.
type ForecastRt = rt.Forecast
