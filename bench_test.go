// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations called out in DESIGN.md. Each benchmark is named for
// the paper artifact it reproduces; cmd/figures renders the corresponding
// data files. Run with:
//
//	go test -bench=. -benchmem
package osprey_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osprey"
	"osprey/internal/abm"
	"osprey/internal/aero"
	"osprey/internal/calibrate"
	"osprey/internal/design"
	"osprey/internal/emews"
	"osprey/internal/epi"
	"osprey/internal/gp"
	"osprey/internal/linalg"
	"osprey/internal/mcmc"
	"osprey/internal/metarvm"
	"osprey/internal/music"
	"osprey/internal/obs"
	"osprey/internal/rng"
	"osprey/internal/rt"
	"osprey/internal/sobolidx"
	"osprey/internal/wal"
	"osprey/internal/wastewater"
)

// benchGoldstein is a reduced-but-real MCMC configuration so benchmark
// iterations complete in tenths of seconds rather than minutes.
func benchGoldstein() osprey.GoldsteinOptions {
	return osprey.GoldsteinOptions{Iterations: 200, BurnIn: 300, Thin: 2}
}

// BenchmarkFigure1WorkflowPipeline measures one full automated daily cycle
// of the Figure 1 workflow: four feed polls, four transforms, four
// Goldstein analyses through the batch scheduler, and the population-
// weighted aggregation.
func BenchmarkFigure1WorkflowPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := osprey.New(osprey.Config{Identity: "bench", Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
			ScenarioDays: 100, StartDay: 70,
			Goldstein: benchGoldstein(), Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := wp.PollAll(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		wp.Close()
		p.Shutdown()
	}
}

// BenchmarkFigure2GoldsteinRt measures one plant's semi-parametric Bayesian
// R(t) estimation — the expensive step the paper routes to a compute node.
func BenchmarkFigure2GoldsteinRt(b *testing.B) {
	b.ReportAllocs()
	sc := wastewater.DefaultScenario(100)
	s := wastewater.Generate(wastewater.ChicagoPlants()[0], sc, rng.New(1))
	opt := benchGoldstein()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		if _, err := rt.EstimateGoldstein(s.Observations, s.Plant, 100, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2CoriBaseline measures the "more standard" sliding-window
// estimator the paper cites for contrast; the Goldstein/Cori time ratio is
// the paper's justification for HPC resources.
func BenchmarkFigure2CoriBaseline(b *testing.B) {
	w := epi.DiscretizedGamma(5.2, 1.9, 14)
	sc := wastewater.DefaultScenario(100)
	seed := []float64{100, 100, 100, 100, 100}
	inc := epi.RenewalSimulate(sc.Rt, seed, w, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epi.CoriEstimate(inc, w, 7, 1, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2EnsembleAggregation measures the third workflow step: the
// population-weighted pooling of four plant posteriors.
func BenchmarkFigure2EnsembleAggregation(b *testing.B) {
	sc := wastewater.DefaultScenario(100)
	root := rng.New(3)
	var ests []*rt.Estimate
	for i, p := range wastewater.ChicagoPlants() {
		s := wastewater.Generate(p, sc, root.Split(p.Name))
		opt := benchGoldstein()
		opt.Seed = uint64(i + 1)
		est, err := rt.EstimateGoldstein(s.Observations, p, 100, opt)
		if err != nil {
			b.Fatal(err)
		}
		ests = append(ests, est)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.EnsembleWeighted(ests, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3MetaRVM measures one 90-day stochastic MetaRVM
// simulation over the four-group default configuration of Figure 3.
func BenchmarkFigure3MetaRVM(b *testing.B) {
	cfg := metarvm.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := metarvm.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ModelEvaluation measures the GSA quantity of interest at
// the center of the Table 1 parameter ranges.
func BenchmarkTable1ModelEvaluation(b *testing.B) {
	space := metarvm.GSAParameterSpace()
	x := space.Scale([]float64{0.5, 0.5, 0.5, 0.5, 0.5})
	for i := 0; i < b.N; i++ {
		if _, err := metarvm.EvaluateGSA(x, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMusicOpts() osprey.MusicOptions {
	return osprey.MusicOptions{
		InitialDesign: 20, Budget: 50, CandidatePool: 80,
		RefitEvery: 10, IndexSamples: 256,
		GP: gp.Options{MaxIter: 60, Restarts: 0},
	}
}

// BenchmarkFigure4MUSIC measures one fixed-seed MUSIC GSA trajectory (the
// teal curves of Figure 4) at a reduced budget.
func BenchmarkFigure4MUSIC(b *testing.B) {
	b.ReportAllocs()
	space := metarvm.GSAParameterSpace()
	for i := 0; i < b.N; i++ {
		opts := benchMusicOpts()
		opts.Space = space
		opts.Seed = uint64(i + 1)
		alg, err := music.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		err = music.RunSequential(alg, func(x []float64) (float64, error) {
			return metarvm.EvaluateGSA(x, 11)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4PCE measures the one-shot PCE baseline (the magenta
// curves of Figure 4): nested LHS designs, degree-3 fit per size.
func BenchmarkFigure4PCE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := osprey.RunPCEComparison(nil, uint64(i+1), 11, []int{60, 100, 150, 200}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Replicates measures the replicated study of Figure 5:
// multiple MUSIC instances (one MetaRVM seed each) interleaved over one
// EMEWS worker pool.
func BenchmarkFigure5Replicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := osprey.New(osprey.Config{Identity: "bench", Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cfg := osprey.GSAConfig{Replicates: 3, Music: benchMusicOpts(), Nodes: 4, WorkersPerNode: 2, Seed: uint64(i + 1)}
		if _, err := osprey.RunGSA(p, cfg, true); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		p.Shutdown()
	}
}

// BenchmarkInterleavedVsSequential is the §3.2 utilization experiment:
// the same replicated study driven sequentially vs interleaved.
func BenchmarkInterleavedVsSequential(b *testing.B) {
	for _, mode := range []struct {
		name        string
		interleaved bool
	}{{"sequential", false}, {"interleaved", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := osprey.New(osprey.Config{Identity: "bench", Nodes: 8})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cfg := osprey.GSAConfig{
					Replicates: 4, Music: benchMusicOpts(),
					Nodes: 4, WorkersPerNode: 2,
					ModelDelay: 2 * time.Millisecond, Seed: uint64(i + 1),
				}
				res, err := osprey.RunGSA(p, cfg, mode.interleaved)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Pool.UtilizationPct, "util%")
				b.StopTimer()
				p.Shutdown()
			}
		})
	}
}

// BenchmarkIngestTransform measures the cheap login-node tier work of one
// ingestion poll cycle — fetch, checksum, validate/transform, store,
// version (the §2.2 "under a minute" claim; here: well under).
func BenchmarkIngestTransform(b *testing.B) {
	p, err := osprey.New(osprey.Config{Identity: "bench", Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Shutdown()
	// A long, bounded scenario (R(t) = 1 keeps incidence flat) so every
	// iteration can reveal fresh data; the plant samples every 2 days, so
	// each iteration advances 2 days.
	sc := wastewater.DefaultScenario(120)
	sc.Days = 6000
	sc.Rt = make([]float64, sc.Days)
	for i := range sc.Rt {
		sc.Rt[i] = 1
	}
	s := wastewater.Generate(wastewater.ChicagoPlants()[0], sc, rng.New(9))
	src := wastewater.NewLiveSource(s, 30)
	srv := httptest.NewServer(src)
	defer srv.Close()

	transformID, err := p.LoginCompute.RegisterFunction(p.Token.ID, "validate",
		func(ctx context.Context, body []byte) ([]byte, error) {
			obs, err := wastewater.ParseCSV(strings.NewReader(string(body)))
			if err != nil {
				return nil, err
			}
			var sb strings.Builder
			sb.WriteString("day,concentration\n")
			for _, o := range obs {
				fmt.Fprintf(&sb, "%d,%.6g\n", o.Day, o.Concentration)
			}
			return []byte(sb.String()), nil
		})
	if err != nil {
		b.Fatal(err)
	}
	flow, err := p.AERO.RegisterIngestion(aero.IngestionSpec{
		Name: "bench-feed", URL: srv.URL,
		Compute: p.LoginCompute, TransformID: transformID,
		Storage: p.StorageTarget(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src.Advance(2) // new sample every iteration so the update path runs
		b.StartTimer()
		updated, err := flow.Poll()
		if err != nil {
			b.Fatal(err)
		}
		if !updated && src.CurrentDay() < 6000 {
			b.Fatal("poll saw no update despite advance")
		}
	}
}

// BenchmarkAblationAcquisition compares the EIGF acquisition against
// pure-variance (ALM) and random refill on the MetaRVM GSA.
func BenchmarkAblationAcquisition(b *testing.B) {
	space := metarvm.GSAParameterSpace()
	for _, acq := range []music.AcqKind{music.EIGF, music.Variance, music.Random} {
		b.Run(acq.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := benchMusicOpts()
				opts.Space = space
				opts.Acquisition = acq
				opts.Seed = uint64(i + 1)
				alg, err := music.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := music.RunSequential(alg, func(x []float64) (float64, error) {
					return metarvm.EvaluateGSA(x, 11)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEnsembleWeights compares population-weighted against
// unweighted pooling of the four plant posteriors.
func BenchmarkAblationEnsembleWeights(b *testing.B) {
	sc := wastewater.DefaultScenario(100)
	root := rng.New(5)
	var ests []*rt.Estimate
	for i, p := range wastewater.ChicagoPlants() {
		s := wastewater.Generate(p, sc, root.Split(p.Name))
		opt := benchGoldstein()
		opt.Seed = uint64(50 + i)
		est, err := rt.EstimateGoldstein(s.Observations, p, 100, opt)
		if err != nil {
			b.Fatal(err)
		}
		ests = append(ests, est)
	}
	unweighted := []float64{1, 1, 1, 1}
	for _, mode := range []struct {
		name    string
		weights []float64
	}{{"population", nil}, {"unweighted", unweighted}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ens, err := rt.EnsembleWeighted(ests, mode.weights)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ens.MeanAbsError(sc.Rt, 14, 93), "mae")
			}
		})
	}
}

// BenchmarkAblationAdaptiveMH compares the adaptive random-walk Metropolis
// kernel against a fixed-scale kernel on a Goldstein-shaped posterior.
func BenchmarkAblationAdaptiveMH(b *testing.B) {
	logp := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			scale := 1.0 + 3.0*float64(i%3) // anisotropic target
			s += v * v / (scale * scale)
		}
		return -0.5 * s
	}
	x0 := make([]float64, 12)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"adaptive", false}, {"fixed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch, err := mcmc.RunComponentwise(logp, x0, mcmc.Options{
					Iterations: 500, BurnIn: 500,
					DisableAdapt: mode.disable,
					Rand:         rng.New(uint64(i + 1)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ch.ESS(0), "ess")
			}
		})
	}
}

// BenchmarkAblationBatchSize compares single-point acquisition (the
// paper's setting) against batched acquisition, which packs worker pools
// better at a small acquisition-optimality cost.
func BenchmarkAblationBatchSize(b *testing.B) {
	space := metarvm.GSAParameterSpace()
	for _, q := range []int{1, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := benchMusicOpts()
				opts.Space = space
				opts.BatchSize = q
				opts.Seed = uint64(i + 1)
				alg, err := music.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				pts, err := alg.InitialDesign()
				if err != nil {
					b.Fatal(err)
				}
				evalAll := func(pts [][]float64) []float64 {
					vals := make([]float64, len(pts))
					for k, p := range pts {
						y, err := metarvm.EvaluateGSA(p, 11)
						if err != nil {
							b.Fatal(err)
						}
						vals[k] = y
					}
					return vals
				}
				if err := alg.Observe(pts, evalAll(pts)); err != nil {
					b.Fatal(err)
				}
				for !alg.Done() {
					batch, err := alg.NextBatch()
					if err != nil {
						b.Fatal(err)
					}
					if err := alg.Observe(batch, evalAll(batch)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCalibrationABC measures the two calibration strategies against
// the real MetaRVM simulator at a fixed small budget.
func BenchmarkCalibrationABC(b *testing.B) {
	space := metarvm.GSAParameterSpace()
	gen := func(x []float64, seed uint64) ([]float64, error) {
		cfg := metarvm.DefaultConfig()
		p, err := metarvm.ApplyGSAPoint(cfg.Params, x)
		if err != nil {
			return nil, err
		}
		cfg.Params = p
		cfg.Seed = seed
		res, err := metarvm.Run(cfg)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(res.Days))
		for i, d := range res.Days {
			out[i] = float64(d.NewHospitalizations)
		}
		return out, nil
	}
	truth := space.Scale([]float64{0.4, 0.5, 0.5, 0.5, 0.5})
	observed, err := gen(truth, 999)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"rejection", "surrogate"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := calibrate.Options{
					Space: space, Observed: observed,
					Budget: 60, AcceptFraction: 0.1, Seed: uint64(i + 1),
				}
				var res *calibrate.Result
				var err error
				if mode == "surrogate" {
					res, err = calibrate.SurrogateABC(gen, calibrate.SurrogateABCOptions{Options: opts})
				} else {
					res, err = calibrate.ABCRejection(gen, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Best().Distance, "best-dist")
			}
		})
	}
}

// BenchmarkExpensiveModelTimeToSolution is the §3.3 argument made
// concrete: on an expensive agent-based model (~40 ms/run vs MetaRVM's
// ~2 ms), the surrogate-driven MUSIC needs far fewer model runs than a
// direct pick–freeze Sobol estimate, so its time-to-solution advantage
// grows with model cost. The run counts are reported as metrics.
func BenchmarkExpensiveModelTimeToSolution(b *testing.B) {
	space := metarvm.GSAParameterSpace()
	b.Run("music-surrogate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := benchMusicOpts()
			opts.Space = space
			opts.InitialDesign = 15
			opts.Budget = 40
			opts.Seed = uint64(i + 1)
			alg, err := music.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			runs := 0
			if err := music.RunSequential(alg, func(x []float64) (float64, error) {
				runs++
				return abm.EvaluateGSA(x, 11)
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(runs), "model-runs")
		}
	})
	b.Run("direct-saltelli", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runs := 0
			if _, err := sobolidx.Estimate(func(u []float64) float64 {
				runs++
				y, err := abm.EvaluateGSA(space.Scale(u), 11)
				if err != nil {
					b.Fatal(err)
				}
				return y
			}, space.Dim(), sobolidx.Options{N: 32, Clamp01: true}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(runs), "model-runs")
		}
	})
}

// BenchmarkCholeskyBlocked measures the cache-tiled blocked factorization
// behind linalg.NewCholesky at sizes above the crossover, on an SPD matrix
// with GP-covariance structure (squared-exponential kernel plus nugget) —
// the matrix shape every surrogate fit factors.
func BenchmarkCholeskyBlocked(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := linalg.NewDense(n, n)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = math.Mod(float64(i)*0.6180339887498949, 1.0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				d := (pts[i] - pts[j]) / 0.3
				v := math.Exp(-0.5 * d * d)
				if i == j {
					v += 1e-6
				}
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.NewCholesky(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSurrogateCrossover charts the dense-vs-sparse fit-time crossover
// on a smooth 5-dimensional response: the dense GP at the design sizes it
// can reach, the sparse inducing-point surrogate (m=256) through the 10k
// designs the dense path cannot. The sparse/n=10000 time landing under
// dense/n=1000 is the scalability acceptance criterion of the surrogate
// layer (see DESIGN.md "Scalable surrogates").
func BenchmarkSurrogateCrossover(b *testing.B) {
	const dim = 5
	opts := gp.Options{MaxIter: 60, Restarts: 0}
	data := func(n int) ([][]float64, []float64) {
		x := design.LatinHypercube(rng.New(uint64(n)), n, dim)
		y := make([]float64, n)
		for i, u := range x {
			y[i] = math.Sin(3*u[0]) + 2*u[1]*u[1] - u[2] + 0.5*u[3]*u[4]
		}
		return x, y
	}
	for _, n := range []int{200, 1000} {
		x, y := data(n)
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gp.Fit(x, y, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{200, 1000, 5000, 10000} {
		x, y := data(n)
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gp.FitSparse(x, y, 256, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubstrateThroughput measures the EMEWS wire substrate end to
// end over real TCP: submit -> pop -> complete for every task, driven by
// four worker connections. The sub-benchmarks compare the legacy
// newline-delimited JSON framing at batch 1 against the binary v2 framing
// at batch 1 and batch 16 (pop_batch/finish_batch, one exchange per
// lease). Reported metrics: tasks/s and the p99 server-side pop wait.
func BenchmarkSubstrateThroughput(b *testing.B) {
	const workers = 4
	for _, mode := range []struct {
		name   string
		batch  int
		legacy bool
	}{
		{"json-b1", 1, true},
		{"binary-b1", 1, false},
		{"binary-b16", 16, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := emews.NewDB()
			defer db.Close()
			srv, err := emews.Serve(db, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			clientOpts := func() []emews.ClientOption {
				opts := []emews.ClientOption{emews.WithOpTimeout(10 * time.Second)}
				if mode.legacy {
					opts = append(opts, emews.WithLegacyFraming())
				}
				return opts
			}

			var completed atomic.Int64
			done := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl, err := emews.Dial(srv.Addr(), clientOpts()...)
					if err != nil {
						b.Error(err)
						return
					}
					defer cl.Close()
					for {
						select {
						case <-done:
							return
						default:
						}
						if mode.batch > 1 {
							tasks, err := cl.PopBatch("bench", mode.batch, 50*time.Millisecond)
							if err != nil || len(tasks) == 0 {
								continue
							}
							fins := make([]emews.FinishOp, len(tasks))
							for i, task := range tasks {
								fins[i] = emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: "ok"}
							}
							errs, berr := cl.FinishBatch(fins)
							if berr != nil {
								continue
							}
							for _, e := range errs {
								if e == nil {
									completed.Add(1)
								}
							}
						} else {
							task, ok, err := cl.Pop("bench", 50*time.Millisecond)
							if err != nil || !ok {
								continue
							}
							if cl.Complete(task.ID, task.Epoch, "ok") == nil {
								completed.Add(1)
							}
						}
					}
				}()
			}

			driver, err := emews.Dial(srv.Addr(), clientOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			defer driver.Close()

			before := obs.Default().Snapshot()
			b.ResetTimer()
			start := time.Now()
			if mode.batch > 1 {
				for sent := 0; sent < b.N; sent += mode.batch {
					n := mode.batch
					if b.N-sent < n {
						n = b.N - sent
					}
					payloads := make([]string, n)
					for i := range payloads {
						payloads[i] = fmt.Sprintf("task-%d", sent+i)
					}
					if _, err := driver.SubmitBatch("bench", 0, payloads, 0); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for i := 0; i < b.N; i++ {
					if _, err := driver.Submit("bench", 0, fmt.Sprintf("task-%d", i)); err != nil {
						b.Fatal(err)
					}
				}
			}
			for completed.Load() < int64(b.N) {
				time.Sleep(200 * time.Microsecond)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			close(done)
			wg.Wait()

			delta := obs.Default().Snapshot().Delta(before)
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tasks/s")
			b.ReportMetric(delta.Histograms["emews.pop.wait_seconds"].P99Seconds*1e3, "p99-pop-ms")
		})
	}
}

// BenchmarkSubstrateThroughputSharded measures the routed shard-group
// path end to end over real TCP at batch 16: per shard an in-memory task
// DB carrying its shard identity behind its own listener, workers driving
// pop_batch/finish_batch through a ShardedClient (fan-out with the
// deterministic merge), and ring-keyed batch submits from a routed
// driver. shards-1 isolates the routing layer's overhead against the
// direct binary-b16 path; shards-3 adds the fan-out and lets the shards
// drain in parallel where cores allow. Reported metric: tasks/s.
func BenchmarkSubstrateThroughputSharded(b *testing.B) {
	const workers = 4
	const batch = 16
	for _, shards := range []int{1, 3} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			addrs := make([]string, shards)
			for i := 0; i < shards; i++ {
				db, err := emews.NewDBShard(i, shards)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				srv, err := emews.Serve(db, "127.0.0.1:0", emews.WithShardIdentity(i, shards))
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				addrs[i] = srv.Addr()
			}

			var completed atomic.Int64
			done := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl, err := emews.DialShardGroup(addrs, emews.WithOpTimeout(10*time.Second))
					if err != nil {
						b.Error(err)
						return
					}
					defer cl.Close()
					for {
						select {
						case <-done:
							return
						default:
						}
						tasks, err := cl.PopBatch("bench", batch, 50*time.Millisecond)
						if err != nil || len(tasks) == 0 {
							continue
						}
						fins := make([]emews.FinishOp, len(tasks))
						for i, task := range tasks {
							fins[i] = emews.FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: "ok"}
						}
						errs, berr := cl.FinishBatch(fins)
						if berr != nil {
							continue
						}
						for _, e := range errs {
							if e == nil {
								completed.Add(1)
							}
						}
					}
				}()
			}

			driver, err := emews.DialShardGroup(addrs, emews.WithOpTimeout(10*time.Second))
			if err != nil {
				b.Fatal(err)
			}
			defer driver.Close()

			b.ResetTimer()
			start := time.Now()
			for sent := 0; sent < b.N; sent += batch {
				n := batch
				if b.N-sent < n {
					n = b.N - sent
				}
				payloads := make([]string, n)
				for i := range payloads {
					payloads[i] = fmt.Sprintf("task-%d", sent+i)
				}
				if _, err := driver.SubmitBatch("bench", 0, payloads, 0); err != nil {
					b.Fatal(err)
				}
			}
			for completed.Load() < int64(b.N) {
				time.Sleep(200 * time.Microsecond)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			close(done)
			wg.Wait()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tasks/s")
		})
	}
}

// BenchmarkWALAppend measures the write-ahead log's per-mutation cost in
// both durability modes: fsync-per-append (the daemon's default, bounded
// by device flush latency) and no-fsync (the OS-crash-only guarantee,
// bounded by encoding + buffered write). Payloads are ~200-byte JSON
// mutations, matching what the AERO and EMEWS stores actually log.
func BenchmarkWALAppend(b *testing.B) {
	payload := []byte(`{"op":"data.version","uuid":"data-00000001","version":{"num":3,` +
		`"timestamp":"2026-08-06T00:00:00Z","checksum":"9f86d081884c7d659a2feaa0c55ad015",` +
		`"size":16384,"endpoint":"globus-local","collection":"raw","path":"plant/day-204.json"}}`)
	for _, mode := range []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"fsync-always", wal.SyncAlways},
		{"fsync-never", wal.SyncNever},
	} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.Options{Name: "wal.bench", Policy: mode.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures boot-time recovery: open a log holding 100k
// mutation records and replay it end to end. This is the replay debt a
// crashed daemon pays before serving, and what snapshot compaction bounds.
func BenchmarkWALReplay(b *testing.B) {
	const records = 100_000
	payload := []byte(`{"op":"submit","task":{"id":12345,"queue":"daemon.probe",` +
		`"priority":0,"payload":"probe-1","status":1,"max_attempts":3}}`)
	dir := b.TempDir()
	l, err := wal.Open(dir, wal.Options{Name: "wal.bench.seed", Policy: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(records * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := wal.Open(dir, wal.Options{Name: "wal.bench.replay", Policy: wal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		n, err := rl.Replay(func([]byte) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		rl.Close()
	}
}

// BenchmarkWatchFanout measures the metadata watch path fanning one
// version append out to 1000 subscribers over real HTTP, comparing the
// two transports GET /watch offers. poll-1k holds one server-side
// long-poll session per subscriber and pays a full request/response per
// subscriber per event; sse-1k holds one persistent SSE stream per
// subscriber and pays only the frame write. Both share the store-side
// bounded-queue subscription hub, so the spread between them is pure
// transport cost. Reported metric: deliveries/s (events × subscribers
// over wall time).
func BenchmarkWatchFanout(b *testing.B) {
	const subscribers = 1000

	b.Run("poll-1k", func(b *testing.B) {
		store := aero.NewStore()
		srv := httptest.NewServer(aero.NewServer(store))
		defer srv.Close()
		rec, err := store.CreateData("hot", "")
		if err != nil {
			b.Fatal(err)
		}
		hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: subscribers}}
		defer hc.CloseIdleConnections()
		poll := func(i int, timeout string) (int, error) {
			resp, err := hc.Get(fmt.Sprintf("%s/watch?sub=s%d&buffer=1024&timeout=%s", srv.URL, i, timeout))
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			var out struct {
				Events []aero.DataUpdate `json:"events"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return 0, err
			}
			return len(out.Events), nil
		}
		// Register every session before the clock starts: the first poll
		// creates the server-side subscription.
		for i := 0; i < subscribers; i++ {
			if _, err := poll(i, "1ms"); err != nil {
				b.Fatal(err)
			}
		}
		received := make([]int, subscribers)
		start := time.Now()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := store.AppendVersion(rec.UUID, aero.Version{Checksum: "bench"}); err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < subscribers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for received[i] <= n {
						got, err := poll(i, "2s")
						if err != nil {
							b.Error(err)
							return
						}
						received[i] += got
					}
				}(i)
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*subscribers/time.Since(start).Seconds(), "deliveries/s")
	})

	b.Run("sse-1k", func(b *testing.B) {
		store := aero.NewStore()
		srv := httptest.NewServer(aero.NewServer(store))
		defer srv.Close()
		rec, err := store.CreateData("hot", "")
		if err != nil {
			b.Fatal(err)
		}
		hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: subscribers}}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var delivered atomic.Int64
		var ready sync.WaitGroup
		var readers sync.WaitGroup
		for i := 0; i < subscribers; i++ {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/watch?buffer=1024", nil)
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Accept", "text/event-stream")
			resp, err := hc.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("watch stream: status %d", resp.StatusCode)
			}
			ready.Add(1)
			readers.Add(1)
			go func(body io.ReadCloser) {
				defer readers.Done()
				defer body.Close()
				sc := bufio.NewScanner(body)
				seenReady := false
				for sc.Scan() {
					switch sc.Text() {
					case "event: ready":
						if !seenReady {
							seenReady = true
							ready.Done()
						}
					case "event: update":
						delivered.Add(1)
					}
				}
			}(resp.Body)
		}
		ready.Wait()
		start := time.Now()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := store.AppendVersion(rec.UUID, aero.Version{Checksum: "bench"}); err != nil {
				b.Fatal(err)
			}
			for want := int64(subscribers) * int64(n+1); delivered.Load() < want; {
				time.Sleep(50 * time.Microsecond)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*subscribers/time.Since(start).Seconds(), "deliveries/s")
		cancel()
		readers.Wait()
	})
}
